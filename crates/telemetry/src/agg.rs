//! Cross-run trace aggregation (`gfab trace-agg`): many JSONL traces
//! stream into mergeable per-group summaries.
//!
//! # Grouping
//!
//! Spans are bucketed by a [`GroupBy`] key:
//!
//! * [`GroupBy::Phase`] — the label-free phase path used by trace-diff
//!   (`check/extract/guided-reduction`), so aggregation and diffing
//!   align on identical keys.
//! * [`GroupBy::K`] / [`GroupBy::Arch`] — derived from the *root* span's
//!   label and inherited by every descendant. Generator circuit names
//!   (`mastrovito_163`) split at the trailing `_<digits>`; fuzz-case
//!   labels (`arch/k/fault`) split at `/`. Spans whose root carries no
//!   parseable label land in the `"unknown"` group rather than being
//!   dropped, so group totals always cover every span.
//!
//! # Exact merge
//!
//! Every per-group statistic — span count, summed counters, and the
//! wall-time [`HistData`] the percentiles are computed from — merges
//! exactly: aggregating N shard traces one by one equals aggregating
//! their concatenation, byte for byte in both the rendered table and
//! the JSONL document. That is what makes sharded sweeps (one trace per
//! worker, per host, per CI job) trustworthy to combine after the fact.
//!
//! # The v3 `agg` document
//!
//! [`TraceAgg::to_jsonl`] writes a line-oriented strict-JSON document in
//! the schema-v3 family (see the [`crate::Trace::to_jsonl`] version
//! history): a header line
//! `{"type":"agg","version":4,"group_by":G,"groups":N}` (plus an
//! optional `"producer"`), then exactly `N` `"group"` lines sorted by
//! key, each carrying the span count, recomputable work units, the
//! counter map, the wall-µs histogram and its p50/p90/p99. The parser
//! in [`TraceAgg::from_jsonl`] is as strict as the trace parser —
//! unknown fields, unknown counter slugs, unsorted or duplicate keys,
//! malformed histograms, and `work_units`/percentile fields that do not
//! match recomputation are all errors — which is what lets
//! `gfab trace-check` validate `agg` documents too.

use crate::json::{parse_object, write_json_string, Json};
use crate::jsonl::{
    err, err_at, expect_keys, expect_keys_opt, get_str, get_u64, parse_hist, write_hist_json,
};
use crate::trace::fmt_duration;
use crate::{Counter, HistData, ParseError, Trace, JSONL_VERSION};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// How [`TraceAgg`] buckets spans into groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// Label-free phase path from the root down (trace-diff's key).
    Phase,
    /// Field degree parsed from the root span's label (`k163`).
    K,
    /// Architecture name parsed from the root span's label
    /// (`mastrovito`, `montgomery`, …).
    Arch,
}

impl GroupBy {
    /// Stable identifier used on the CLI and in the `agg` header.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            GroupBy::Phase => "phase",
            GroupBy::K => "k",
            GroupBy::Arch => "arch",
        }
    }

    /// Inverse of [`GroupBy::slug`]; `None` for unknown identifiers.
    #[must_use]
    pub fn from_slug(s: &str) -> Option<GroupBy> {
        Some(match s {
            "phase" => GroupBy::Phase,
            "k" => GroupBy::K,
            "arch" => GroupBy::Arch,
            _ => return None,
        })
    }
}

/// Everything aggregated under one group key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AggGroup {
    /// Number of spans merged into this group.
    pub spans: u64,
    /// Summed counters, kept sorted by slug (canonical order, so shard
    /// merges serialize identically regardless of arrival order).
    pub counters: Vec<(Counter, u64)>,
    /// Distribution of span durations in microseconds.
    pub wall_us: HistData,
}

impl AggGroup {
    /// Sum of the deterministic work-unit counters
    /// (see [`Counter::is_work`]).
    #[must_use]
    pub fn work(&self) -> u64 {
        self.counters
            .iter()
            .filter(|(c, _)| c.is_work())
            .map(|(_, v)| *v)
            .sum()
    }

    fn add_counter(&mut self, counter: Counter, value: u64) {
        match self
            .counters
            .binary_search_by(|(c, _)| c.slug().cmp(counter.slug()))
        {
            Ok(i) => self.counters[i].1 += value,
            Err(i) => self.counters.insert(i, (counter, value)),
        }
    }

    fn merge(&mut self, other: &AggGroup) {
        self.spans += other.spans;
        for (c, v) in &other.counters {
            self.add_counter(*c, *v);
        }
        self.wall_us.merge(&other.wall_us);
    }
}

/// A mergeable multi-trace aggregation (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAgg {
    group_by: GroupBy,
    /// Per-key aggregates, sorted by key (BTreeMap order).
    pub groups: BTreeMap<String, AggGroup>,
}

/// Derives the K/Arch group key from a root span's label. Fuzz-case
/// labels are `arch/k/fault`; generator circuit names are
/// `<arch>_<digits>`. Anything else is `"unknown"` (for K) or the label
/// itself (for Arch — a bare name is still an architecture).
fn root_key(label: Option<&str>, group_by: GroupBy) -> String {
    let unknown = || "unknown".to_string();
    let Some(label) = label else {
        return unknown();
    };
    if let Some((arch, rest)) = label.split_once('/') {
        let k = rest.split('/').next().unwrap_or("");
        return match group_by {
            GroupBy::Arch if !arch.is_empty() => arch.to_string(),
            GroupBy::K if !k.is_empty() && k.bytes().all(|b| b.is_ascii_digit()) => {
                format!("k{k}")
            }
            _ => unknown(),
        };
    }
    if let Some((arch, k)) = label.rsplit_once('_') {
        if !arch.is_empty() && !k.is_empty() && k.bytes().all(|b| b.is_ascii_digit()) {
            return match group_by {
                GroupBy::Arch => arch.to_string(),
                _ => format!("k{k}"),
            };
        }
    }
    match group_by {
        GroupBy::Arch => label.to_string(),
        _ => unknown(),
    }
}

impl TraceAgg {
    /// An empty aggregation over the given grouping.
    #[must_use]
    pub fn new(group_by: GroupBy) -> TraceAgg {
        TraceAgg {
            group_by,
            groups: BTreeMap::new(),
        }
    }

    /// The grouping this aggregation was built with.
    #[must_use]
    pub fn group_by(&self) -> GroupBy {
        self.group_by
    }

    /// Folds one trace in: every span lands in exactly one group.
    pub fn add_trace(&mut self, trace: &Trace) {
        // Spans are sorted by id and parents precede children, so one
        // forward pass with an id → key memo resolves both the phase
        // path and the inherited root label.
        let mut memo: BTreeMap<u64, String> = BTreeMap::new();
        for s in trace.spans() {
            let key = match self.group_by {
                GroupBy::Phase => match s.parent.and_then(|p| memo.get(&p)) {
                    Some(parent_path) => format!("{parent_path}/{}", s.phase.slug()),
                    None => s.phase.slug().to_string(),
                },
                GroupBy::K | GroupBy::Arch => match s.parent.and_then(|p| memo.get(&p)) {
                    Some(inherited) => inherited.clone(),
                    None => root_key(s.label.as_deref(), self.group_by),
                },
            };
            memo.insert(s.id, key.clone());
            let g = self.groups.entry(key).or_default();
            g.spans += 1;
            g.wall_us
                .record(s.duration.as_micros().min(u128::from(u64::MAX)) as u64);
            for (c, v) in &s.counters {
                g.add_counter(*c, *v);
            }
        }
    }

    /// Merges another aggregation in (shard recombination).
    ///
    /// # Errors
    ///
    /// When the two sides were grouped differently — their keys would
    /// not be comparable.
    pub fn merge(&mut self, other: &TraceAgg) -> Result<(), String> {
        if self.group_by != other.group_by {
            return Err(format!(
                "cannot merge a --group-by {} aggregation into a --group-by {} one",
                other.group_by.slug(),
                self.group_by.slug()
            ));
        }
        for (key, g) in &other.groups {
            self.groups.entry(key.clone()).or_default().merge(g);
        }
        Ok(())
    }

    /// Total deterministic work units over all groups.
    #[must_use]
    pub fn work_units(&self) -> u64 {
        self.groups.values().map(AggGroup::work).sum()
    }

    /// Total span count over all groups.
    #[must_use]
    pub fn total_spans(&self) -> u64 {
        self.groups.values().map(|g| g.spans).sum()
    }

    /// Serializes to the v3 `agg` JSONL document (see the module docs).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.emit_jsonl(None)
    }

    /// [`TraceAgg::to_jsonl`] with the optional `"producer"` header
    /// field set (the emitting tool's version string).
    #[must_use]
    pub fn to_jsonl_tagged(&self, producer: &str) -> String {
        self.emit_jsonl(Some(producer))
    }

    fn emit_jsonl(&self, producer: Option<&str>) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"agg\",\"version\":{JSONL_VERSION},\"group_by\":\"{}\",\"groups\":{}",
            self.group_by.slug(),
            self.groups.len()
        );
        if let Some(p) = producer {
            out.push_str(",\"producer\":");
            write_json_string(&mut out, p);
        }
        out.push_str("}\n");
        for (key, g) in &self.groups {
            out.push_str("{\"type\":\"group\",\"key\":");
            write_json_string(&mut out, key);
            let _ = write!(
                out,
                ",\"spans\":{},\"work_units\":{},\"counters\":{{",
                g.spans,
                g.work()
            );
            for (i, (c, v)) in g.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", c.slug(), v);
            }
            out.push_str("},\"wall_us\":");
            write_hist_json(&mut out, &g.wall_us);
            let _ = write!(
                out,
                ",\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
                g.wall_us.percentile(50.0),
                g.wall_us.percentile(90.0),
                g.wall_us.percentile(99.0)
            );
            out.push('\n');
        }
        out
    }

    /// Parses and validates a v3 `agg` document (strictly — see the
    /// module docs for what is rejected).
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the offending line and field path.
    pub fn from_jsonl(text: &str) -> Result<TraceAgg, ParseError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty());

        let (hline, header) = lines.next().ok_or_else(|| err(0, "empty agg file"))?;
        let header = parse_object(header).map_err(|m| err(hline, m))?;
        expect_keys_opt(
            &header,
            &["type", "version", "group_by", "groups"],
            &["producer"],
        )
        .map_err(|e| e.on_line(hline))?;
        if header.get("type") != Some(&Json::Str("agg".into())) {
            return Err(err_at(hline, "type", "header \"type\" must be \"agg\""));
        }
        let version = get_u64(&header, "version").map_err(|e| e.on_line(hline))?;
        if !(3..=JSONL_VERSION).contains(&version) {
            return Err(err_at(
                hline,
                "version",
                format!("unsupported agg version {version} (want 3..={JSONL_VERSION})"),
            ));
        }
        if header.get("producer").is_some() {
            get_str(&header, "producer").map_err(|e| e.on_line(hline))?;
        }
        let group_by_slug = get_str(&header, "group_by").map_err(|e| e.on_line(hline))?;
        let group_by = GroupBy::from_slug(&group_by_slug).ok_or_else(|| {
            err_at(
                hline,
                "group_by",
                format!("unknown group_by {group_by_slug:?} (want phase|k|arch)"),
            )
        })?;
        let declared = get_u64(&header, "groups").map_err(|e| e.on_line(hline))?;

        let mut groups: BTreeMap<String, AggGroup> = BTreeMap::new();
        let mut last_key: Option<String> = None;
        for (lineno, line) in lines {
            let obj = parse_object(line).map_err(|m| err(lineno, m))?;
            expect_keys(
                &obj,
                &[
                    "type",
                    "key",
                    "spans",
                    "work_units",
                    "counters",
                    "wall_us",
                    "p50_us",
                    "p90_us",
                    "p99_us",
                ],
            )
            .map_err(|e| e.on_line(lineno))?;
            if obj.get("type") != Some(&Json::Str("group".into())) {
                return Err(err_at(lineno, "type", "group \"type\" must be \"group\""));
            }
            let key = get_str(&obj, "key").map_err(|e| e.on_line(lineno))?;
            if key.is_empty() {
                return Err(err_at(lineno, "key", "group key must be non-empty"));
            }
            // Canonical form: keys strictly ascending (also rules out
            // duplicates), so a valid document has exactly one byte
            // representation per aggregation.
            if let Some(prev) = &last_key {
                if *prev >= key {
                    return Err(err_at(
                        lineno,
                        "key",
                        format!("group keys must be strictly ascending ({prev:?} >= {key:?})"),
                    ));
                }
            }
            last_key = Some(key.clone());

            let mut g = AggGroup {
                spans: get_u64(&obj, "spans").map_err(|e| e.on_line(lineno))?,
                ..AggGroup::default()
            };
            let Some(Json::Obj(pairs)) = obj.get("counters") else {
                return Err(err_at(lineno, "counters", "\"counters\" must be an object"));
            };
            for (slug, value) in pairs {
                let path = format!("counters.{slug}");
                let counter = Counter::from_slug(slug).ok_or_else(|| {
                    err_at(lineno, &path, format!("unknown counter slug {slug:?}"))
                })?;
                let Json::Num(v) = value else {
                    return Err(err_at(lineno, &path, "counter values must be integers"));
                };
                g.add_counter(counter, *v);
            }
            let Some(Json::Obj(pairs)) = obj.get("wall_us") else {
                return Err(err_at(lineno, "wall_us", "\"wall_us\" must be an object"));
            };
            g.wall_us = parse_hist(&crate::json::Obj(pairs.clone()))
                .map_err(|e| err_at(lineno, format!("wall_us.{}", e.0), e.1))?;
            if g.wall_us.count != g.spans {
                return Err(err_at(
                    lineno,
                    "wall_us.count",
                    format!(
                        "wall histogram has {} samples but the group declares {} spans",
                        g.wall_us.count, g.spans
                    ),
                ));
            }
            // Derived fields must match recomputation — they are
            // conveniences for `jq`-style consumers, not trusted input.
            let declared_work = get_u64(&obj, "work_units").map_err(|e| e.on_line(lineno))?;
            if declared_work != g.work() {
                return Err(err_at(
                    lineno,
                    "work_units",
                    format!(
                        "declares {declared_work} work units, counters sum to {}",
                        g.work()
                    ),
                ));
            }
            for (field, p) in [("p50_us", 50.0), ("p90_us", 90.0), ("p99_us", 99.0)] {
                let declared_p = get_u64(&obj, field).map_err(|e| e.on_line(lineno))?;
                let computed = g.wall_us.percentile(p);
                if declared_p != computed {
                    return Err(err_at(
                        lineno,
                        field,
                        format!("declares {declared_p}, histogram computes {computed}"),
                    ));
                }
            }
            groups.insert(key, g);
        }

        if groups.len() as u64 != declared {
            return Err(err_at(
                0,
                "groups",
                format!("header declares {declared} groups, found {}", groups.len()),
            ));
        }
        Ok(TraceAgg { group_by, groups })
    }

    /// Renders the human-readable summary table: one row per group with
    /// span count, work units and wall-time percentiles.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10}",
            self.group_by.slug(),
            "spans",
            "work",
            "p50 wall",
            "p90 wall",
            "p99 wall",
            "max wall"
        );
        let us = |v: u64| fmt_duration(Duration::from_micros(v));
        for (key, g) in &self.groups {
            let _ = writeln!(
                out,
                "{:<44} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10}",
                key,
                g.spans,
                g.work(),
                us(g.wall_us.percentile(50.0)),
                us(g.wall_us.percentile(90.0)),
                us(g.wall_us.percentile(99.0)),
                us(g.wall_us.max)
            );
        }
        let _ = writeln!(
            out,
            "total: {} group(s), {} span(s), {} work unit(s)",
            self.groups.len(),
            self.total_spans(),
            self.work_units()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, SpanRecord};

    fn span(
        id: u64,
        parent: Option<u64>,
        phase: Phase,
        label: Option<&str>,
        dur_us: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            phase,
            label: label.map(str::to_owned),
            thread: 0,
            start: Duration::ZERO,
            duration: Duration::from_micros(dur_us),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    fn sample() -> Trace {
        let mut root = span(1, None, Phase::Check, Some("mastrovito_16"), 900);
        root.counters = vec![(Counter::SimVectors, 64)];
        let mut ext = span(2, Some(1), Phase::Extract, Some("spec"), 500);
        ext.counters = vec![(Counter::ReductionSteps, 100), (Counter::Gates, 7)];
        let ext2 = span(3, Some(1), Phase::Extract, Some("impl"), 300);
        Trace::from_spans(vec![root, ext, ext2])
    }

    #[test]
    fn phase_grouping_matches_diff_paths() {
        let mut agg = TraceAgg::new(GroupBy::Phase);
        agg.add_trace(&sample());
        let keys: Vec<&String> = agg.groups.keys().collect();
        assert_eq!(keys, ["check", "check/extract"]);
        assert_eq!(agg.groups["check/extract"].spans, 2);
        assert_eq!(agg.groups["check/extract"].work(), 107);
        assert_eq!(agg.work_units(), 171);
        assert_eq!(agg.groups["check/extract"].wall_us.count, 2);
    }

    #[test]
    fn root_labels_drive_k_and_arch_keys() {
        assert_eq!(
            root_key(Some("mastrovito_163"), GroupBy::Arch),
            "mastrovito"
        );
        assert_eq!(root_key(Some("mastrovito_163"), GroupBy::K), "k163");
        assert_eq!(
            root_key(Some("montgomery/8/gate-flip"), GroupBy::Arch),
            "montgomery"
        );
        assert_eq!(root_key(Some("montgomery/8/gate-flip"), GroupBy::K), "k8");
        assert_eq!(root_key(Some("spec"), GroupBy::Arch), "spec");
        assert_eq!(root_key(Some("spec"), GroupBy::K), "unknown");
        assert_eq!(root_key(None, GroupBy::Arch), "unknown");

        // Children inherit the root's key, labels of their own ignored.
        let mut agg = TraceAgg::new(GroupBy::Arch);
        agg.add_trace(&sample());
        assert_eq!(agg.groups.len(), 1);
        assert_eq!(agg.groups["mastrovito"].spans, 3);
    }

    #[test]
    fn shard_merge_equals_whole_aggregation() {
        let a = sample();
        let b = {
            let mut root = span(1, None, Phase::Check, Some("montgomery_16"), 2000);
            root.counters = vec![(Counter::Conflicts, 9)];
            Trace::from_spans(vec![root])
        };
        let whole = Trace::merged([(&a, Duration::ZERO), (&b, Duration::from_micros(1000))]);

        for group_by in [GroupBy::Phase, GroupBy::K, GroupBy::Arch] {
            let mut sharded = TraceAgg::new(group_by);
            sharded.add_trace(&a);
            sharded.add_trace(&b);
            let mut unsharded = TraceAgg::new(group_by);
            unsharded.add_trace(&whole);
            assert_eq!(sharded, unsharded, "group_by {}", group_by.slug());
            assert_eq!(sharded.to_jsonl(), unsharded.to_jsonl());

            // And TraceAgg::merge of per-shard aggregations agrees too.
            let mut left = TraceAgg::new(group_by);
            left.add_trace(&a);
            let mut right = TraceAgg::new(group_by);
            right.add_trace(&b);
            left.merge(&right).unwrap();
            assert_eq!(left, sharded);
        }

        let mut phase = TraceAgg::new(GroupBy::Phase);
        let mut arch = TraceAgg::new(GroupBy::Arch);
        phase.add_trace(&a);
        arch.add_trace(&b);
        assert!(phase.merge(&arch).is_err(), "mismatched group_by");
    }

    #[test]
    fn agg_document_round_trips_and_is_strict() {
        let mut agg = TraceAgg::new(GroupBy::Phase);
        agg.add_trace(&sample());
        let text = agg.to_jsonl_tagged("gfab test");
        assert!(text.starts_with("{\"type\":\"agg\",\"version\":4,"));
        let parsed = TraceAgg::from_jsonl(&text).expect("round trip");
        assert_eq!(parsed, agg);
        assert_eq!(parsed.to_jsonl(), agg.to_jsonl());

        // Tampered derived fields are rejected with the field named.
        let bad = text.replace("\"work_units\":107", "\"work_units\":999");
        let e = TraceAgg::from_jsonl(&bad).unwrap_err();
        assert_eq!(e.path, "work_units");
        let bad = text.replacen("\"p50_us\":", "\"p50_us\":1", 1);
        assert!(TraceAgg::from_jsonl(&bad).is_err());
        // Wrong group count, unknown slugs, bad ordering.
        let bad = text.replace("\"groups\":2", "\"groups\":5");
        assert!(TraceAgg::from_jsonl(&bad)
            .unwrap_err()
            .message
            .contains("declares 5"));
        let bad = text.replace("\"reduction-steps\"", "\"warp-steps\"");
        assert!(TraceAgg::from_jsonl(&bad)
            .unwrap_err()
            .path
            .contains("counters."));
        assert!(TraceAgg::from_jsonl("").is_err());
        let lines: Vec<&str> = text.lines().collect();
        let swapped = format!("{}\n{}\n{}\n", lines[0], lines[2], lines[1]);
        let e = TraceAgg::from_jsonl(&swapped).unwrap_err();
        assert!(e.message.contains("ascending"), "{e}");
    }

    #[test]
    fn render_lists_every_group() {
        let mut agg = TraceAgg::new(GroupBy::Phase);
        agg.add_trace(&sample());
        let out = agg.render();
        assert!(out.contains("check/extract"));
        assert!(out.contains("total: 2 group(s), 3 span(s), 171 work unit(s)"));
    }
}
