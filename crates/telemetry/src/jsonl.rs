//! Line-delimited JSON codec for [`Trace`] (the `--trace-json` sink).
//!
//! # Schema (version 1)
//!
//! The file is UTF-8, one JSON object per line.
//!
//! * **Header line** (first line):
//!   `{"type":"trace","version":1,"spans":N}` — `N` is the number of
//!   span lines that follow.
//! * **Span lines** (exactly `N`), each with exactly these fields:
//!   - `"type"`: the string `"span"`;
//!   - `"id"`: integer ≥ 1, unique within the file;
//!   - `"parent"`: integer id of the parent span, or `null` for roots —
//!     must reference an id present in the file;
//!   - `"phase"`: a [`Phase`] slug (e.g. `"guided-reduction"`);
//!   - `"label"`: free-form string or `null`;
//!   - `"thread"`: integer display index of the recording thread;
//!   - `"start_us"`: integer microseconds from the trace epoch;
//!   - `"dur_us"`: integer microseconds of span duration;
//!   - `"counters"`: object mapping [`Counter`] slugs to integers.
//!
//! The parser is strict — unknown fields, unknown phase/counter slugs,
//! duplicate ids, dangling parents and a wrong span count are all
//! errors. `gfab trace-check` and CI validate emitted files with exactly
//! this parser.

use crate::{Counter, Phase, SpanRecord, Trace};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Duration;

/// Schema version written and accepted by this codec.
pub const JSONL_VERSION: u64 = 1;

/// A JSONL parse/validation failure, with the 1-based offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "trace jsonl: {}", self.message)
        } else {
            write!(f, "trace jsonl line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

impl Trace {
    /// Serializes the trace to the documented JSONL schema.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"trace\",\"version\":{},\"spans\":{}}}",
            JSONL_VERSION,
            self.spans().len()
        );
        for s in self.spans() {
            let _ = write!(out, "{{\"type\":\"span\",\"id\":{},\"parent\":", s.id);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"phase\":\"{}\",\"label\":", s.phase.slug());
            match &s.label {
                Some(l) => write_json_string(&mut out, l),
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"thread\":{},\"start_us\":{},\"dur_us\":{},\"counters\":{{",
                s.thread,
                s.start.as_micros(),
                s.duration.as_micros()
            );
            for (i, (c, v)) in s.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", c.slug(), v);
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Parses and validates a trace from the documented JSONL schema.
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the offending line for any syntax or
    /// schema violation (see the module docs for the rules).
    pub fn from_jsonl(text: &str) -> Result<Trace, ParseError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty());

        let (hline, header) = lines.next().ok_or_else(|| err(0, "empty trace file"))?;
        let header = parse_object(header).map_err(|m| err(hline, m))?;
        expect_keys(&header, &["type", "version", "spans"]).map_err(|m| err(hline, m))?;
        if header.get("type") != Some(&Json::Str("trace".into())) {
            return Err(err(hline, "header \"type\" must be \"trace\""));
        }
        if get_u64(&header, "version").map_err(|m| err(hline, m))? != JSONL_VERSION {
            return Err(err(
                hline,
                format!("unsupported version (want {JSONL_VERSION})"),
            ));
        }
        let declared = get_u64(&header, "spans").map_err(|m| err(hline, m))?;

        let mut spans = Vec::new();
        let mut ids = BTreeSet::new();
        for (lineno, line) in lines {
            let obj = parse_object(line).map_err(|m| err(lineno, m))?;
            expect_keys(
                &obj,
                &[
                    "type", "id", "parent", "phase", "label", "thread", "start_us", "dur_us",
                    "counters",
                ],
            )
            .map_err(|m| err(lineno, m))?;
            if obj.get("type") != Some(&Json::Str("span".into())) {
                return Err(err(lineno, "span \"type\" must be \"span\""));
            }
            let id = get_u64(&obj, "id").map_err(|m| err(lineno, m))?;
            if id == 0 {
                return Err(err(lineno, "span id must be >= 1"));
            }
            if !ids.insert(id) {
                return Err(err(lineno, format!("duplicate span id {id}")));
            }
            let parent = match obj.get("parent") {
                Some(Json::Null) => None,
                Some(Json::Num(n)) => Some(*n),
                _ => return Err(err(lineno, "\"parent\" must be an integer or null")),
            };
            let phase_slug = get_str(&obj, "phase").map_err(|m| err(lineno, m))?;
            let phase = Phase::from_slug(&phase_slug)
                .ok_or_else(|| err(lineno, format!("unknown phase slug {phase_slug:?}")))?;
            let label = match obj.get("label") {
                Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                _ => return Err(err(lineno, "\"label\" must be a string or null")),
            };
            let thread = get_u64(&obj, "thread").map_err(|m| err(lineno, m))?;
            let start_us = get_u64(&obj, "start_us").map_err(|m| err(lineno, m))?;
            let dur_us = get_u64(&obj, "dur_us").map_err(|m| err(lineno, m))?;
            let counters_obj = match obj.get("counters") {
                Some(Json::Obj(pairs)) => pairs,
                _ => return Err(err(lineno, "\"counters\" must be an object")),
            };
            let mut counters = Vec::new();
            for (key, value) in counters_obj {
                let counter = Counter::from_slug(key)
                    .ok_or_else(|| err(lineno, format!("unknown counter slug {key:?}")))?;
                let Json::Num(v) = value else {
                    return Err(err(lineno, format!("counter {key:?} must be an integer")));
                };
                counters.push((counter, *v));
            }
            spans.push(SpanRecord {
                id,
                parent,
                phase,
                label,
                thread,
                start: Duration::from_micros(start_us),
                duration: Duration::from_micros(dur_us),
                counters,
            });
        }

        if spans.len() as u64 != declared {
            return Err(err(
                0,
                format!("header declares {declared} spans, found {}", spans.len()),
            ));
        }
        for s in &spans {
            if let Some(p) = s.parent {
                if !ids.contains(&p) {
                    return Err(err(0, format!("span {} has dangling parent {p}", s.id)));
                }
            }
        }
        spans.sort_by_key(|s| s.id);
        Ok(Trace::from_spans(spans))
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Minimal strict JSON parser — just enough for the schema above: one
// object per line containing strings, unsigned integers, null and one
// level of nested object. In-repo so the workspace stays dependency-free
// (DESIGN.md §7).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Num(u64),
    Str(String),
    Obj(Vec<(String, Json)>),
}

struct Obj(Vec<(String, Json)>);

impl Obj {
    fn get(&self, key: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

fn expect_keys(obj: &Obj, keys: &[&str]) -> Result<(), String> {
    for k in keys {
        if obj.get(k).is_none() {
            return Err(format!("missing required field {k:?}"));
        }
    }
    for (k, _) in &obj.0 {
        if !keys.contains(&k.as_str()) {
            return Err(format!("unexpected field {k:?}"));
        }
    }
    Ok(())
}

fn get_u64(obj: &Obj, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        _ => Err(format!("{key:?} must be an unsigned integer")),
    }
}

fn get_str(obj: &Obj, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("{key:?} must be a string")),
    }
}

fn parse_object(line: &str) -> Result<Obj, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after JSON object".into());
    }
    match value {
        Json::Obj(pairs) => Ok(Obj(pairs)),
        _ => Err("line is not a JSON object".into()),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 2 {
            return Err("object nesting too deep for the trace schema".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _): &(String, Json)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_spans(vec![
            SpanRecord {
                id: 1,
                parent: None,
                phase: Phase::Extract,
                label: Some("spec \"q\"\\".into()),
                thread: 0,
                start: Duration::from_micros(5),
                duration: Duration::from_micros(1000),
                counters: vec![(Counter::Gates, 12), (Counter::ReductionSteps, 34)],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                phase: Phase::ModelBuild,
                label: None,
                thread: 3,
                start: Duration::from_micros(6),
                duration: Duration::from_micros(400),
                counters: vec![],
            },
        ])
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let t = sample();
        let text = t.to_jsonl();
        let parsed = Trace::from_jsonl(&text).expect("round trip");
        assert_eq!(parsed, t);
    }

    #[test]
    fn every_emitted_line_is_an_object() {
        for line in sample().to_jsonl().lines() {
            parse_object(line).expect("each line parses standalone");
        }
    }

    #[test]
    fn rejects_missing_and_unknown_fields() {
        let missing =
            "{\"type\":\"trace\",\"version\":1,\"spans\":1}\n{\"type\":\"span\",\"id\":1}";
        let e = Trace::from_jsonl(missing).unwrap_err();
        assert!(e.message.contains("missing required field"), "{e}");
        assert_eq!(e.line, 2);

        let extra = sample()
            .to_jsonl()
            .replace("\"thread\":0", "\"thread\":0,\"bogus\":1");
        assert!(Trace::from_jsonl(&extra)
            .unwrap_err()
            .message
            .contains("unexpected field"));
    }

    #[test]
    fn rejects_unknown_slugs_and_bad_structure() {
        let bad_phase = sample().to_jsonl().replace("\"extract\"", "\"warp-drive\"");
        assert!(Trace::from_jsonl(&bad_phase)
            .unwrap_err()
            .message
            .contains("unknown phase"));

        let bad_counter = sample().to_jsonl().replace("\"gates\"", "\"widgets\"");
        assert!(Trace::from_jsonl(&bad_counter)
            .unwrap_err()
            .message
            .contains("unknown counter"));

        let dangling = sample().to_jsonl().replace("\"parent\":1", "\"parent\":99");
        assert!(Trace::from_jsonl(&dangling)
            .unwrap_err()
            .message
            .contains("dangling parent"));

        let wrong_count = sample().to_jsonl().replace("\"spans\":2", "\"spans\":3");
        assert!(Trace::from_jsonl(&wrong_count)
            .unwrap_err()
            .message
            .contains("declares 3 spans"));

        assert!(Trace::from_jsonl("").is_err());
        assert!(Trace::from_jsonl("not json").is_err());
    }
}
