//! Line-delimited JSON codec for [`Trace`] (the `--trace-json` sink).
//!
//! # Schema (version 4; versions 1 through 3 still parse)
//!
//! The file is UTF-8, one JSON object per line.
//!
//! * **Header line** (first line):
//!   `{"type":"trace","version":4,"spans":N}` — `N` is the number of
//!   span lines that follow. `version` may be 1 through 4; it fixes the
//!   exact field set of every span line. The header may additionally
//!   carry an optional `"producer"` string (the emitting tool's version,
//!   e.g. `gfab 0.4.0+abc1234` — what `gfab --version` prints), written
//!   by [`Trace::to_jsonl_tagged`] so traces and the fuzz corpus record
//!   the build that produced them.
//! * **Span lines** (exactly `N`), each with exactly these fields:
//!   - `"type"`: the string `"span"`;
//!   - `"id"`: integer ≥ 1, unique within the file;
//!   - `"parent"`: integer id of the parent span, or `null` for roots —
//!     must reference an id present in the file;
//!   - `"phase"`: a [`Phase`] slug (e.g. `"guided-reduction"`);
//!   - `"label"`: free-form string or `null`;
//!   - `"thread"`: integer display index of the recording thread;
//!   - `"start_us"`: integer microseconds from the trace epoch;
//!   - `"dur_us"`: integer microseconds of span duration;
//!   - `"counters"`: object mapping [`Counter`] slugs to integers;
//!   - *(version 2 only)* `"gauges"`: object mapping [`Gauge`] slugs to
//!     integers;
//!   - *(version 2 only)* `"hists"`: object mapping [`Hist`] slugs to
//!     histogram objects `{"count":C,"sum":S,"min":m,"max":M,`
//!     `"buckets":[b0,…,b15]}` with exactly
//!     [`HIST_BUCKETS`](crate::HIST_BUCKETS) buckets summing to `C`.
//!
//! A version-1 file must *not* carry `gauges`/`hists`; version-2 files
//! and later must carry both (possibly empty objects). The parser
//! is strict — unknown fields, unknown slugs, duplicate ids, dangling
//! parents, a wrong span count and malformed histograms are all errors,
//! and every error names the offending line *and field path* (what
//! `gfab trace-check` prints). Version-1 files parse into spans with
//! empty gauge/histogram sets, so every downstream consumer (trace-diff
//! included) treats old traces uniformly.
//!
//! # Version history
//!
//! * **v1** — header + span lines with counters only.
//! * **v2** — adds the `gauges`/`hists` span fields (PR 3).
//! * **v3** — span lines are *byte-identical to v2*. The bump marks the
//!   introduction of two sibling line-oriented documents that share this
//!   file's conventions and strict parser discipline: the `agg` summary
//!   document written by `gfab trace-agg` (see [`crate::TraceAgg`]) and
//!   the run-ledger `run` rows appended by `--ledger` (see
//!   [`crate::ledger`]). A v2 consumer reading a v3 *trace* file loses
//!   nothing; it only needs to accept the higher header number.
//! * **v4** — span lines are still byte-identical to v2. The bump marks
//!   the live-event stream documents written by `--events` (see
//!   [`crate::events`]): an `events` header line followed by `event`
//!   lines and an optional `events-end` footer. Purely additive, same
//!   one-object-per-line conventions and strict parsing.

use crate::json::{parse_object, write_json_string, Json, Obj};
use crate::{Counter, Gauge, Hist, HistData, Phase, SpanRecord, Trace, HIST_BUCKETS};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Duration;

/// Schema version written by this codec. [`Trace::from_jsonl`] accepts
/// every version from [`JSONL_MIN_VERSION`] up to this one.
pub const JSONL_VERSION: u64 = 4;

/// Oldest schema version [`Trace::from_jsonl`] still accepts.
pub const JSONL_MIN_VERSION: u64 = 1;

/// A JSONL parse/validation failure, with the 1-based offending line and
/// (when the problem is tied to a specific field) the field path within
/// that line, e.g. `hists.division-chain-len.buckets`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// Dotted field path within the line (empty when the problem is not
    /// tied to one field, e.g. malformed JSON).
    pub path: String,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.line, self.path.is_empty()) {
            (0, true) => write!(f, "trace jsonl: {}", self.message),
            (0, false) => write!(f, "trace jsonl field {}: {}", self.path, self.message),
            (l, true) => write!(f, "trace jsonl line {l}: {}", self.message),
            (l, false) => write!(
                f,
                "trace jsonl line {l}, field {}: {}",
                self.path, self.message
            ),
        }
    }
}

impl std::error::Error for ParseError {}

pub(crate) fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        path: String::new(),
        message: message.into(),
    }
}

pub(crate) fn err_at(
    line: usize,
    path: impl Into<String>,
    message: impl Into<String>,
) -> ParseError {
    ParseError {
        line,
        path: path.into(),
        message: message.into(),
    }
}

impl Trace {
    /// Serializes the trace to the documented JSONL schema (version 4;
    /// span lines are byte-identical to version 2).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.emit_jsonl(None)
    }

    /// [`Trace::to_jsonl`] with the optional `"producer"` header field
    /// set to `producer` — the emitting tool's version string, recorded
    /// so a trace file names the build that wrote it.
    #[must_use]
    pub fn to_jsonl_tagged(&self, producer: &str) -> String {
        self.emit_jsonl(Some(producer))
    }

    fn emit_jsonl(&self, producer: Option<&str>) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"trace\",\"version\":{},\"spans\":{}",
            JSONL_VERSION,
            self.spans().len()
        );
        if let Some(p) = producer {
            out.push_str(",\"producer\":");
            write_json_string(&mut out, p);
        }
        out.push_str("}\n");
        for s in self.spans() {
            let _ = write!(out, "{{\"type\":\"span\",\"id\":{},\"parent\":", s.id);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"phase\":\"{}\",\"label\":", s.phase.slug());
            match &s.label {
                Some(l) => write_json_string(&mut out, l),
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"thread\":{},\"start_us\":{},\"dur_us\":{},\"counters\":{{",
                s.thread,
                s.start.as_micros(),
                s.duration.as_micros()
            );
            for (i, (c, v)) in s.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", c.slug(), v);
            }
            out.push_str("},\"gauges\":{");
            for (i, (g, v)) in s.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", g.slug(), v);
            }
            out.push_str("},\"hists\":{");
            for (i, (h, d)) in s.hists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":", h.slug());
                write_hist_json(&mut out, d);
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Parses and validates a trace from the documented JSONL schema
    /// (versions 1 through 4).
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the offending line and field path for any
    /// syntax or schema violation (see the module docs for the rules).
    pub fn from_jsonl(text: &str) -> Result<Trace, ParseError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty());

        let (hline, header) = lines.next().ok_or_else(|| err(0, "empty trace file"))?;
        let header = parse_object(header).map_err(|m| err(hline, m))?;
        expect_keys_opt(&header, &["type", "version", "spans"], &["producer"])
            .map_err(|e| e.on_line(hline))?;
        if header.get("producer").is_some() {
            // Optional, but when present it must be the producing tool's
            // version string.
            get_str(&header, "producer").map_err(|e| e.on_line(hline))?;
        }
        if header.get("type") != Some(&Json::Str("trace".into())) {
            return Err(err_at(hline, "type", "header \"type\" must be \"trace\""));
        }
        let version = get_u64(&header, "version").map_err(|e| e.on_line(hline))?;
        if !(JSONL_MIN_VERSION..=JSONL_VERSION).contains(&version) {
            return Err(err_at(
                hline,
                "version",
                format!(
                    "unsupported version {version} (want {JSONL_MIN_VERSION}..={JSONL_VERSION})"
                ),
            ));
        }
        let declared = get_u64(&header, "spans").map_err(|e| e.on_line(hline))?;

        let v1_keys: &[&str] = &[
            "type", "id", "parent", "phase", "label", "thread", "start_us", "dur_us", "counters",
        ];
        let v2_keys: &[&str] = &[
            "type", "id", "parent", "phase", "label", "thread", "start_us", "dur_us", "counters",
            "gauges", "hists",
        ];
        let span_keys = if version >= 2 { v2_keys } else { v1_keys };

        let mut spans = Vec::new();
        let mut ids = BTreeSet::new();
        for (lineno, line) in lines {
            let obj = parse_object(line).map_err(|m| err(lineno, m))?;
            expect_keys(&obj, span_keys).map_err(|e| e.on_line(lineno))?;
            if obj.get("type") != Some(&Json::Str("span".into())) {
                return Err(err_at(lineno, "type", "span \"type\" must be \"span\""));
            }
            let id = get_u64(&obj, "id").map_err(|e| e.on_line(lineno))?;
            if id == 0 {
                return Err(err_at(lineno, "id", "span id must be >= 1"));
            }
            if !ids.insert(id) {
                return Err(err_at(lineno, "id", format!("duplicate span id {id}")));
            }
            let parent = match obj.get("parent") {
                Some(Json::Null) => None,
                Some(Json::Num(n)) => Some(*n),
                _ => {
                    return Err(err_at(
                        lineno,
                        "parent",
                        "\"parent\" must be an integer or null",
                    ))
                }
            };
            let phase_slug = get_str(&obj, "phase").map_err(|e| e.on_line(lineno))?;
            let phase = Phase::from_slug(&phase_slug).ok_or_else(|| {
                err_at(
                    lineno,
                    "phase",
                    format!("unknown phase slug {phase_slug:?}"),
                )
            })?;
            let label = match obj.get("label") {
                Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                _ => {
                    return Err(err_at(
                        lineno,
                        "label",
                        "\"label\" must be a string or null",
                    ))
                }
            };
            let thread = get_u64(&obj, "thread").map_err(|e| e.on_line(lineno))?;
            let start_us = get_u64(&obj, "start_us").map_err(|e| e.on_line(lineno))?;
            let dur_us = get_u64(&obj, "dur_us").map_err(|e| e.on_line(lineno))?;

            let counters_obj = get_obj(&obj, "counters").map_err(|e| e.on_line(lineno))?;
            let mut counters = Vec::new();
            for (key, value) in counters_obj {
                let path = format!("counters.{key}");
                let counter = Counter::from_slug(key).ok_or_else(|| {
                    err_at(lineno, &path, format!("unknown counter slug {key:?}"))
                })?;
                let Json::Num(v) = value else {
                    return Err(err_at(lineno, &path, "counter values must be integers"));
                };
                counters.push((counter, *v));
            }

            let mut gauges = Vec::new();
            let mut hists = Vec::new();
            if version >= 2 {
                for (key, value) in get_obj(&obj, "gauges").map_err(|e| e.on_line(lineno))? {
                    let path = format!("gauges.{key}");
                    let gauge = Gauge::from_slug(key).ok_or_else(|| {
                        err_at(lineno, &path, format!("unknown gauge slug {key:?}"))
                    })?;
                    let Json::Num(v) = value else {
                        return Err(err_at(lineno, &path, "gauge values must be integers"));
                    };
                    gauges.push((gauge, *v));
                }
                for (key, value) in get_obj(&obj, "hists").map_err(|e| e.on_line(lineno))? {
                    let path = format!("hists.{key}");
                    let hist = Hist::from_slug(key).ok_or_else(|| {
                        err_at(lineno, &path, format!("unknown histogram slug {key:?}"))
                    })?;
                    let Json::Obj(pairs) = value else {
                        return Err(err_at(lineno, &path, "histograms must be objects"));
                    };
                    let data = parse_hist(&Obj(pairs.clone()))
                        .map_err(|e| err_at(lineno, format!("{path}.{}", e.0), e.1))?;
                    hists.push((hist, data));
                }
            }

            spans.push(SpanRecord {
                id,
                parent,
                phase,
                label,
                thread,
                start: Duration::from_micros(start_us),
                duration: Duration::from_micros(dur_us),
                counters,
                gauges,
                hists,
            });
        }

        if spans.len() as u64 != declared {
            return Err(err_at(
                0,
                "spans",
                format!("header declares {declared} spans, found {}", spans.len()),
            ));
        }
        for s in &spans {
            if let Some(p) = s.parent {
                if !ids.contains(&p) {
                    return Err(err_at(
                        0,
                        "parent",
                        format!("span {} has dangling parent {p}", s.id),
                    ));
                }
            }
        }
        spans.sort_by_key(|s| s.id);
        Ok(Trace::from_spans(spans))
    }
}

/// Appends the canonical JSON form of a histogram — the object shape
/// [`parse_hist`] accepts. Shared by the span emitter and the `agg`
/// document emitter so both serialize histograms byte-identically.
pub(crate) fn write_hist_json(out: &mut String, d: &HistData) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        d.count, d.sum, d.min, d.max
    );
    for (j, b) in d.buckets.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

/// Validates one histogram object; the error carries the sub-path
/// (relative to the histogram) and message.
pub(crate) fn parse_hist(obj: &Obj) -> Result<HistData, (String, String)> {
    expect_keys(obj, &["count", "sum", "min", "max", "buckets"])
        .map_err(|e| (e.path, e.message))?;
    let field = |key: &str| -> Result<u64, (String, String)> {
        match obj.get(key) {
            Some(Json::Num(n)) => Ok(*n),
            _ => Err((key.into(), "must be an unsigned integer".into())),
        }
    };
    let (count, sum, min, max) = (field("count")?, field("sum")?, field("min")?, field("max")?);
    let Some(Json::Arr(items)) = obj.get("buckets") else {
        return Err(("buckets".into(), "must be an array".into()));
    };
    if items.len() != HIST_BUCKETS {
        return Err((
            "buckets".into(),
            format!(
                "must have exactly {HIST_BUCKETS} buckets, found {}",
                items.len()
            ),
        ));
    }
    let mut buckets = [0u64; HIST_BUCKETS];
    for (i, item) in items.iter().enumerate() {
        let Json::Num(n) = item else {
            return Err((
                format!("buckets[{i}]"),
                "must be an unsigned integer".into(),
            ));
        };
        buckets[i] = *n;
    }
    if buckets.iter().sum::<u64>() != count {
        return Err((
            "buckets".into(),
            format!("bucket totals must sum to \"count\" ({count})"),
        ));
    }
    if count > 0 && min > max {
        return Err(("min".into(), "histogram min exceeds max".into()));
    }
    Ok(HistData {
        count,
        sum,
        min,
        max,
        buckets,
    })
}

/// A field-scoped validation failure before a line number is known.
pub(crate) struct FieldError {
    pub(crate) path: String,
    pub(crate) message: String,
}

impl FieldError {
    pub(crate) fn on_line(self, line: usize) -> ParseError {
        ParseError {
            line,
            path: self.path,
            message: self.message,
        }
    }
}

pub(crate) fn field_err(path: impl Into<String>, message: impl Into<String>) -> FieldError {
    FieldError {
        path: path.into(),
        message: message.into(),
    }
}

pub(crate) fn expect_keys(obj: &Obj, keys: &[&str]) -> Result<(), FieldError> {
    expect_keys_opt(obj, keys, &[])
}

pub(crate) fn expect_keys_opt(
    obj: &Obj,
    keys: &[&str],
    optional: &[&str],
) -> Result<(), FieldError> {
    for k in keys {
        if obj.get(k).is_none() {
            return Err(field_err(*k, format!("missing required field {k:?}")));
        }
    }
    for (k, _) in &obj.0 {
        if !keys.contains(&k.as_str()) && !optional.contains(&k.as_str()) {
            return Err(field_err(k.clone(), format!("unexpected field {k:?}")));
        }
    }
    Ok(())
}

pub(crate) fn get_u64(obj: &Obj, key: &str) -> Result<u64, FieldError> {
    match obj.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        _ => Err(field_err(
            key,
            format!("{key:?} must be an unsigned integer"),
        )),
    }
}

pub(crate) fn get_str(obj: &Obj, key: &str) -> Result<String, FieldError> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(field_err(key, format!("{key:?} must be a string"))),
    }
}

pub(crate) fn get_obj<'a>(obj: &'a Obj, key: &str) -> Result<&'a Vec<(String, Json)>, FieldError> {
    match obj.get(key) {
        Some(Json::Obj(pairs)) => Ok(pairs),
        _ => Err(field_err(key, format!("{key:?} must be an object"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut hist = HistData::new();
        hist.record(3);
        hist.record(100);
        Trace::from_spans(vec![
            SpanRecord {
                id: 1,
                parent: None,
                phase: Phase::Extract,
                label: Some("spec \"q\"\\".into()),
                thread: 0,
                start: Duration::from_micros(5),
                duration: Duration::from_micros(1000),
                counters: vec![(Counter::Gates, 12), (Counter::ReductionSteps, 34)],
                gauges: vec![(Gauge::MemPeakBytes, 4096), (Gauge::MemAllocs, 7)],
                hists: vec![(Hist::DivisionChainLen, hist)],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                phase: Phase::ModelBuild,
                label: None,
                thread: 3,
                start: Duration::from_micros(6),
                duration: Duration::from_micros(400),
                counters: vec![],
                gauges: vec![],
                hists: vec![],
            },
        ])
    }

    /// A hand-written version-1 file (the pre-metrics schema).
    const V1_TEXT: &str = concat!(
        "{\"type\":\"trace\",\"version\":1,\"spans\":2}\n",
        "{\"type\":\"span\",\"id\":1,\"parent\":null,\"phase\":\"extract\",\"label\":\"spec\",",
        "\"thread\":0,\"start_us\":5,\"dur_us\":1000,\"counters\":{\"gates\":12}}\n",
        "{\"type\":\"span\",\"id\":2,\"parent\":1,\"phase\":\"model-build\",\"label\":null,",
        "\"thread\":0,\"start_us\":6,\"dur_us\":400,\"counters\":{}}\n",
    );

    #[test]
    fn round_trip_preserves_every_field() {
        let t = sample();
        let text = t.to_jsonl();
        let parsed = Trace::from_jsonl(&text).expect("round trip");
        assert_eq!(parsed, t);
    }

    #[test]
    fn every_emitted_line_is_an_object() {
        for line in sample().to_jsonl().lines() {
            parse_object(line).expect("each line parses standalone");
        }
    }

    #[test]
    fn tagged_producer_round_trips_and_stays_optional() {
        let t = sample();
        let tagged = t.to_jsonl_tagged("gfab 0.3.0+abc1234");
        assert!(tagged
            .lines()
            .next()
            .unwrap()
            .contains("\"producer\":\"gfab 0.3.0+abc1234\""));
        assert_eq!(Trace::from_jsonl(&tagged).expect("tagged parses"), t);
        // Untagged output is unchanged and still parses.
        assert!(!t.to_jsonl().contains("producer"));
        // A non-string producer is rejected with the field named.
        let bad = tagged.replace("\"gfab 0.3.0+abc1234\"", "3");
        let e = Trace::from_jsonl(&bad).unwrap_err();
        assert_eq!(e.path, "producer");
    }

    #[test]
    fn version_1_files_still_parse() {
        let t = Trace::from_jsonl(V1_TEXT).expect("v1 parses");
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[0].counters, vec![(Counter::Gates, 12)]);
        assert!(t.spans()[0].gauges.is_empty());
        assert!(t.spans()[0].hists.is_empty());
    }

    #[test]
    fn version_1_files_must_not_carry_v2_fields() {
        let mixed = V1_TEXT.replace("\"counters\":{}}", "\"counters\":{},\"gauges\":{}}");
        let e = Trace::from_jsonl(&mixed).unwrap_err();
        assert!(e.message.contains("unexpected field"), "{e}");
        assert_eq!(e.path, "gauges");
    }

    #[test]
    fn version_2_files_must_carry_v2_fields() {
        let text = sample()
            .to_jsonl()
            .replace(",\"gauges\":{\"mem-peak-bytes\":4096,\"mem-allocs\":7}", "");
        let e = Trace::from_jsonl(&text).unwrap_err();
        assert!(e.message.contains("missing required field"), "{e}");
        assert_eq!(e.path, "gauges");
    }

    #[test]
    fn rejects_missing_and_unknown_fields_with_paths() {
        let missing =
            "{\"type\":\"trace\",\"version\":2,\"spans\":1}\n{\"type\":\"span\",\"id\":1}";
        let e = Trace::from_jsonl(missing).unwrap_err();
        assert!(e.message.contains("missing required field"), "{e}");
        assert_eq!(e.line, 2);
        assert_eq!(e.path, "parent");

        let extra = sample()
            .to_jsonl()
            .replace("\"thread\":0", "\"thread\":0,\"bogus\":1");
        let e = Trace::from_jsonl(&extra).unwrap_err();
        assert!(e.message.contains("unexpected field"));
        assert_eq!(e.path, "bogus");
    }

    #[test]
    fn rejects_unknown_slugs_and_bad_structure() {
        let bad_phase = sample().to_jsonl().replace("\"extract\"", "\"warp-drive\"");
        let e = Trace::from_jsonl(&bad_phase).unwrap_err();
        assert!(e.message.contains("unknown phase"));
        assert_eq!(e.path, "phase");

        let bad_counter = sample().to_jsonl().replace("\"gates\"", "\"widgets\"");
        let e = Trace::from_jsonl(&bad_counter).unwrap_err();
        assert!(e.message.contains("unknown counter"));
        assert_eq!(e.path, "counters.widgets");

        let bad_gauge = sample()
            .to_jsonl()
            .replace("\"mem-allocs\"", "\"mem-leaks\"");
        let e = Trace::from_jsonl(&bad_gauge).unwrap_err();
        assert!(e.message.contains("unknown gauge"));
        assert_eq!(e.path, "gauges.mem-leaks");

        let dangling = sample().to_jsonl().replace("\"parent\":1", "\"parent\":99");
        assert!(Trace::from_jsonl(&dangling)
            .unwrap_err()
            .message
            .contains("dangling parent"));

        let wrong_count = sample().to_jsonl().replace("\"spans\":2", "\"spans\":3");
        assert!(Trace::from_jsonl(&wrong_count)
            .unwrap_err()
            .message
            .contains("declares 3 spans"));

        assert!(Trace::from_jsonl("").is_err());
        assert!(Trace::from_jsonl("not json").is_err());
    }

    #[test]
    fn rejects_malformed_histograms_with_deep_paths() {
        // Bucket totals no longer sum to "count".
        let bad_count = sample().to_jsonl().replace("\"count\":2", "\"count\":3");
        let e = Trace::from_jsonl(&bad_count).unwrap_err();
        assert!(e.message.contains("sum to"), "{e}");
        assert_eq!(e.path, "hists.division-chain-len.buckets");
        assert_eq!(e.line, 2);

        // Wrong bucket count.
        let short = sample()
            .to_jsonl()
            .replace("\"buckets\":[0,1", "\"buckets\":[1");
        let e = Trace::from_jsonl(&short).unwrap_err();
        assert!(e.message.contains("exactly"), "{e}");

        // min > max.
        let bad_min = sample().to_jsonl().replace("\"min\":3", "\"min\":999");
        let e = Trace::from_jsonl(&bad_min).unwrap_err();
        assert_eq!(e.path, "hists.division-chain-len.min");
    }
}
