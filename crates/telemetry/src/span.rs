//! The recording side: [`Telemetry`] handles, [`Span`] guards and the
//! in-memory [`Collector`].

use crate::events::{EventBus, EventKind, ProgressMeter};
use crate::mem::{self, MemSnapshot};
use crate::{Counter, Gauge, Hist, HistData, Phase};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Process-wide assignment of small display indices to OS threads.
///
/// Purely presentational: the index is recorded on spans (and live
/// events) so a trace can show which work ran concurrently. It never
/// feeds back into any computation, so it cannot perturb deterministic
/// results.
pub(crate) fn thread_index() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static INDEX: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|i| *i)
}

/// One finished span as stored by the [`Collector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the trace (1-based; ids order span creation).
    pub id: u64,
    /// Parent span id, or `None` for a root span.
    pub parent: Option<u64>,
    /// The pipeline phase this span timed.
    pub phase: Phase,
    /// Free-form label (block instance name, "spec"/"impl", …).
    pub label: Option<String>,
    /// Display index of the recording thread (see module docs).
    pub thread: u64,
    /// Monotonic start offset from the collector's epoch.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub duration: Duration,
    /// Typed work counters attributed to this span.
    pub counters: Vec<(Counter, u64)>,
    /// Sampled gauge values (combined per [`Gauge::combine`]).
    pub gauges: Vec<(Gauge, u64)>,
    /// Fixed-bucket histograms attributed to this span.
    pub hists: Vec<(Hist, HistData)>,
}

/// In-memory sink for finished spans.
///
/// Created per traced query (one `Verifier::extract`/`check` call owns
/// one collector); cheap [`Telemetry`] clones share it via `Arc`. Call
/// [`Collector::snapshot`] after the query to obtain the queryable
/// [`crate::Trace`].
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    /// Creates an empty collector whose epoch is "now".
    #[must_use]
    pub fn new() -> Arc<Collector> {
        Arc::new(Collector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            records: Mutex::new(Vec::new()),
        })
    }

    fn record(&self, rec: SpanRecord) {
        self.records.lock().expect("collector poisoned").push(rec);
    }

    /// Snapshots all finished spans into a queryable [`crate::Trace`].
    #[must_use]
    pub fn snapshot(&self) -> crate::Trace {
        let mut spans = self.records.lock().expect("collector poisoned").clone();
        spans.sort_by_key(|s| s.id);
        crate::Trace::from_spans(spans)
    }
}

/// A cheaply cloneable recording handle.
///
/// Either attached to a [`Collector`] (tracing on) or disabled (the
/// default). The handle also carries the parent span id under which new
/// spans nest; [`Span::telemetry`] derives re-parented handles, which is
/// how the span tree is threaded down the pipeline — including across
/// threads, by moving a clone into each worker.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    collector: Option<Arc<Collector>>,
    parent: Option<u64>,
    events: EventBus,
}

impl Telemetry {
    /// A handle that records nothing. Equivalent to `Telemetry::default()`.
    #[must_use]
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// A root handle (no parent) recording into `collector`.
    #[must_use]
    pub fn attached(collector: &Arc<Collector>) -> Telemetry {
        Telemetry {
            collector: Some(Arc::clone(collector)),
            parent: None,
            events: EventBus::default(),
        }
    }

    /// The same handle, additionally publishing live span events
    /// (phase enter/exit, periodic work-unit progress) into `bus`.
    /// Publishing is display-only and never blocks — see
    /// [`crate::events`].
    #[must_use]
    pub fn with_events(mut self, bus: &EventBus) -> Telemetry {
        self.events = bus.clone();
        self
    }

    /// The live event bus this handle publishes into (disabled by
    /// default).
    #[must_use]
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// Whether spans opened through this handle are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Opens a span for `phase` under this handle's parent.
    ///
    /// The guard's clock starts now; [`Span::finish`] (or dropping the
    /// guard) stops it. On a disabled handle this only reads the
    /// monotonic clock — nothing is allocated or locked.
    #[must_use]
    pub fn span(&self, phase: Phase) -> Span {
        self.open(phase, None)
    }

    /// Opens a labelled span (block instance name, "spec"/"impl", …).
    #[must_use]
    pub fn span_labeled(&self, phase: Phase, label: &str) -> Span {
        self.open(phase, Some(label))
    }

    fn open(&self, phase: Phase, label: Option<&str>) -> Span {
        // The single enabled/disabled branch: everything below the `map`
        // is skipped when tracing is off.
        let state = self.collector.as_ref().map(|c| EnabledSpan {
            collector: Arc::clone(c),
            id: c.next_id.fetch_add(1, Ordering::Relaxed),
            parent: self.parent,
            label: label.map(str::to_owned),
            mem: mem::span_enter(),
        });
        // Same contract for live events: one branch when the bus is
        // disabled, nothing allocated.
        let events = self.events.is_enabled().then(|| {
            let label = label.map(str::to_owned);
            self.events.publish(EventKind::PhaseEnter {
                phase,
                label: label.clone(),
            });
            Box::new(SpanEvents {
                bus: self.events.clone(),
                label,
                meter: ProgressMeter::new(),
            })
        });
        Span {
            state,
            events,
            phase,
            start: Instant::now(),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct EnabledSpan {
    collector: Arc<Collector>,
    id: u64,
    parent: Option<u64>,
    label: Option<String>,
    mem: Option<MemSnapshot>,
}

/// Live-event state of an open span: the bus to publish into and the
/// stride meter that turns work-counter increments into periodic
/// progress snapshots. Boxed so an events-off [`Span`] stays small.
#[derive(Debug)]
struct SpanEvents {
    bus: EventBus,
    label: Option<String>,
    meter: ProgressMeter,
}

/// An open span; finishing (or dropping) it records one [`SpanRecord`].
///
/// The guard owns the phase's clock: [`Span::finish`] returns the
/// measured duration, which instrumented code uses to fill its stats
/// structs — the span *is* the timing source, not a second bookkeeping
/// system.
#[derive(Debug)]
pub struct Span {
    state: Option<EnabledSpan>,
    events: Option<Box<SpanEvents>>,
    phase: Phase,
    start: Instant,
    counters: Vec<(Counter, u64)>,
    gauges: Vec<(Gauge, u64)>,
    hists: Vec<(Hist, HistData)>,
}

impl Span {
    /// Whether this span records anything. Lets callers skip building
    /// observations (e.g. a full histogram pass) on disabled handles.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Attributes `value` units of `counter` to this span.
    ///
    /// Values for the same counter accumulate. No-op (a single branch)
    /// when tracing is disabled.
    pub fn counter(&mut self, counter: Counter, value: u64) {
        if let Some(ev) = &mut self.events {
            ev.meter.note(&ev.bus, self.phase, counter, value);
        }
        if self.state.is_none() {
            return;
        }
        if let Some(slot) = self.counters.iter_mut().find(|(c, _)| *c == counter) {
            slot.1 += value;
        } else {
            self.counters.push((counter, value));
        }
    }

    /// Records a gauge observation; repeated observations of the same
    /// gauge combine per [`Gauge::combine`]. No-op when tracing is
    /// disabled.
    pub fn gauge(&mut self, gauge: Gauge, value: u64) {
        if self.state.is_none() {
            return;
        }
        if let Some(slot) = self.gauges.iter_mut().find(|(g, _)| *g == gauge) {
            slot.1 = gauge.combine(slot.1, value);
        } else {
            self.gauges.push((gauge, value));
        }
    }

    /// Records one histogram sample. No-op when tracing is disabled.
    pub fn observe(&mut self, hist: Hist, value: u64) {
        if self.state.is_none() {
            return;
        }
        self.hist_mut(hist).record(value);
    }

    /// Merges a pre-aggregated histogram into this span's histogram of
    /// the same kind. No-op when tracing is disabled.
    pub fn observe_hist(&mut self, hist: Hist, data: &HistData) {
        if self.state.is_none() || data.is_empty() {
            return;
        }
        self.hist_mut(hist).merge(data);
    }

    fn hist_mut(&mut self, hist: Hist) -> &mut HistData {
        if let Some(i) = self.hists.iter().position(|(h, _)| *h == hist) {
            &mut self.hists[i].1
        } else {
            self.hists.push((hist, HistData::new()));
            &mut self.hists.last_mut().expect("just pushed").1
        }
    }

    /// A [`Telemetry`] handle whose spans will nest under this span.
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        let events = self
            .events
            .as_ref()
            .map_or_else(EventBus::default, |e| e.bus.clone());
        match &self.state {
            Some(s) => Telemetry {
                collector: Some(Arc::clone(&s.collector)),
                parent: Some(s.id),
                events,
            },
            None => Telemetry {
                collector: None,
                parent: None,
                events,
            },
        }
    }

    /// Stops the clock, records the span and returns its duration.
    #[must_use]
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let duration = self.start.elapsed();
        if let Some(ev) = self.events.take() {
            ev.bus.publish(EventKind::PhaseExit {
                phase: self.phase,
                label: ev.label,
                dur_us: duration.as_micros().min(u128::from(u64::MAX)) as u64,
                work_units: ev.meter.work(),
            });
        }
        if let Some(s) = self.state.take() {
            if let Some(snap) = s.mem {
                let d = mem::span_exit(snap);
                self.gauges.push((Gauge::MemPeakBytes, d.peak_bytes));
                self.gauges.push((Gauge::MemAllocBytes, d.alloc_bytes));
                self.gauges.push((Gauge::MemAllocs, d.allocs));
            }
            let start = self.start.saturating_duration_since(s.collector.epoch);
            s.collector.record(SpanRecord {
                id: s.id,
                parent: s.parent,
                phase: self.phase,
                label: s.label,
                thread: thread_index(),
                start,
                duration,
                counters: std::mem::take(&mut self.counters),
                gauges: std::mem::take(&mut self.gauges),
                hists: std::mem::take(&mut self.hists),
            });
        }
        duration
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.state.is_some() || self.events.is_some() {
            let _ = self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tele = Telemetry::disabled();
        assert!(!tele.is_enabled());
        let mut span = tele.span(Phase::Extract);
        span.counter(Counter::Gates, 42);
        span.gauge(Gauge::MemPeakBytes, 9);
        span.observe(Hist::DivisionChainLen, 3);
        assert!(span.counters.is_empty(), "disabled spans must not allocate");
        assert!(span.gauges.is_empty());
        assert!(span.hists.is_empty());
        let _ = span.finish();
    }

    #[test]
    fn spans_nest_and_accumulate_counters() {
        let collector = Collector::new();
        let tele = Telemetry::attached(&collector);
        let mut root = tele.span_labeled(Phase::Extract, "spec");
        root.counter(Counter::Gates, 10);
        root.counter(Counter::Gates, 5);
        let child = root.telemetry().span(Phase::ModelBuild);
        let _ = child.finish();
        let _ = root.finish();

        let trace = collector.snapshot();
        assert_eq!(trace.spans().len(), 2);
        let root_rec = trace.spans().iter().find(|s| s.id == 1).unwrap();
        let child_rec = trace.spans().iter().find(|s| s.id == 2).unwrap();
        assert_eq!(root_rec.parent, None);
        assert_eq!(root_rec.label.as_deref(), Some("spec"));
        assert_eq!(root_rec.counters, vec![(Counter::Gates, 15)]);
        assert_eq!(child_rec.parent, Some(1));
        assert_eq!(child_rec.phase, Phase::ModelBuild);
    }

    #[test]
    fn gauges_combine_and_histograms_accumulate() {
        let collector = Collector::new();
        let tele = Telemetry::attached(&collector);
        let mut span = tele.span(Phase::GuidedReduction);
        span.gauge(Gauge::MemPeakBytes, 100);
        span.gauge(Gauge::MemPeakBytes, 40);
        span.gauge(Gauge::MemAllocs, 2);
        span.gauge(Gauge::MemAllocs, 3);
        span.observe(Hist::DivisionChainLen, 7);
        let mut pre = HistData::new();
        pre.record(9);
        span.observe_hist(Hist::DivisionChainLen, &pre);
        let _ = span.finish();

        let trace = collector.snapshot();
        let rec = &trace.spans()[0];
        assert!(rec.gauges.contains(&(Gauge::MemPeakBytes, 100)));
        assert!(rec.gauges.contains(&(Gauge::MemAllocs, 5)));
        let (_, h) = rec
            .hists
            .iter()
            .find(|(h, _)| *h == Hist::DivisionChainLen)
            .expect("histogram recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 16);
    }

    #[test]
    fn dropping_an_open_span_still_records_it() {
        let collector = Collector::new();
        let tele = Telemetry::attached(&collector);
        {
            let _span = tele.span(Phase::SatSolve);
        }
        assert_eq!(collector.snapshot().spans().len(), 1);
    }

    #[test]
    fn spans_publish_live_events_even_without_a_collector() {
        use crate::events::{EventBus, Recv, PROGRESS_STRIDE};
        let (bus, rx) = EventBus::bounded(32);
        let tele = Telemetry::disabled().with_events(&bus);
        let mut root = tele.span_labeled(Phase::Extract, "spec");
        root.counter(Counter::ReductionSteps, PROGRESS_STRIDE);
        let child = root.telemetry().span(Phase::ModelBuild);
        let _ = child.finish();
        let _ = root.finish();
        drop(tele);
        drop(bus);

        let mut kinds = Vec::new();
        while let Recv::Event(ev) = rx.recv_timeout(std::time::Duration::from_millis(50)) {
            kinds.push(ev.kind.slug());
        }
        assert_eq!(
            kinds,
            [
                "phase-enter",
                "progress",
                "phase-enter",
                "phase-exit",
                "phase-exit"
            ]
        );
    }

    #[test]
    fn cross_thread_spans_share_the_collector() {
        let collector = Collector::new();
        let tele = Telemetry::attached(&collector);
        let root = tele.span(Phase::Extract);
        let handle = root.telemetry();
        std::thread::scope(|scope| {
            for name in ["blk_a", "blk_b"] {
                let h = handle.clone();
                scope.spawn(move || {
                    let span = h.span_labeled(Phase::Block, name);
                    let _ = span.finish();
                });
            }
        });
        let _ = root.finish();
        let trace = collector.snapshot();
        assert_eq!(trace.spans().len(), 3);
        let blocks: Vec<_> = trace
            .spans()
            .iter()
            .filter(|s| s.phase == Phase::Block)
            .collect();
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.parent == Some(1)));
    }
}
