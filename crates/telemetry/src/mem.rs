//! Per-phase memory accounting: safe bookkeeping behind an instrumented
//! global allocator.
//!
//! This crate forbids `unsafe`, so the `GlobalAlloc` wrapper itself lives
//! with whoever owns the binary (the `gfab` CLI installs one; tests can
//! install their own). The wrapper forwards every allocation event to
//! [`on_alloc`] / [`on_dealloc`], which are:
//!
//! * **zero-cost when off** — the first thing either hook does is one
//!   relaxed atomic load of the global enable flag; tracking is off by
//!   default and only [`MemGuard`]s turn it on;
//! * **thread-local** — bytes are attributed to the allocating thread,
//!   so a span observes exactly the allocations made by the code it
//!   wraps (cross-thread frees are accounted on the freeing thread; the
//!   live-bytes figure is relative to when tracking was enabled).
//!
//! Span integration: [`span_enter`] snapshots the thread's counters and
//! resets the peak watermark to the current live level; [`span_exit`]
//! reads the watermark back, restores the enclosing span's watermark
//! (so nested spans each see their own peak) and returns the deltas,
//! which [`crate::Span`] records as [`crate::Gauge`] values.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of live [`MemGuard`]s; tracking is on while nonzero.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

struct ThreadMem {
    /// Live bytes since tracking started (may go negative if blocks
    /// allocated before tracking are freed after).
    cur: Cell<i64>,
    /// High-water mark of `cur` since the innermost open span began.
    peak: Cell<i64>,
    /// Total bytes allocated since thread start (while tracking).
    total: Cell<u64>,
    /// Total allocation count since thread start (while tracking).
    allocs: Cell<u64>,
}

thread_local! {
    static MEM: ThreadMem = const {
        ThreadMem {
            cur: Cell::new(0),
            peak: Cell::new(0),
            total: Cell::new(0),
            allocs: Cell::new(0),
        }
    };
}

/// Whether allocation tracking is currently enabled (any live guard).
#[inline]
#[must_use]
pub fn is_tracking() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Enables allocation tracking for the guard's lifetime.
///
/// Guards nest (a counter, not a flag), so concurrent traced queries can
/// each hold one. Tracking only yields data if the process installed an
/// instrumented global allocator that calls [`on_alloc`]/[`on_dealloc`];
/// without one, spans simply record no memory gauges.
#[must_use]
pub fn track() -> MemGuard {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    MemGuard { _priv: () }
}

/// RAII guard returned by [`track`]; dropping it disables tracking once
/// every other guard is gone.
#[derive(Debug)]
pub struct MemGuard {
    _priv: (),
}

impl Drop for MemGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Allocation hook for an instrumented global allocator.
///
/// When tracking is off this is a single relaxed load. Uses `try_with`
/// so allocations during thread teardown are silently ignored instead of
/// aborting.
#[inline]
pub fn on_alloc(size: usize) {
    if !is_tracking() {
        return;
    }
    let _ = MEM.try_with(|m| {
        let cur = m.cur.get() + size as i64;
        m.cur.set(cur);
        if cur > m.peak.get() {
            m.peak.set(cur);
        }
        m.total.set(m.total.get().wrapping_add(size as u64));
        m.allocs.set(m.allocs.get() + 1);
    });
}

/// Deallocation hook for an instrumented global allocator.
#[inline]
pub fn on_dealloc(size: usize) {
    if !is_tracking() {
        return;
    }
    let _ = MEM.try_with(|m| {
        m.cur.set(m.cur.get() - size as i64);
    });
}

/// Snapshot of the thread's memory counters at span entry.
#[derive(Debug, Clone, Copy)]
pub struct MemSnapshot {
    start_total: u64,
    start_allocs: u64,
    saved_peak: i64,
}

/// Memory attributed to a span, as returned by [`span_exit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDelta {
    /// Peak live bytes on the span's thread while it was open.
    pub peak_bytes: u64,
    /// Total bytes allocated on the span's thread while it was open.
    pub alloc_bytes: u64,
    /// Allocations on the span's thread while it was open.
    pub allocs: u64,
}

/// Begins per-span accounting: returns `None` when tracking is off,
/// otherwise snapshots the thread counters and resets the peak watermark
/// to the current live level (so the span measures its *own* peak).
#[must_use]
pub fn span_enter() -> Option<MemSnapshot> {
    if !is_tracking() {
        return None;
    }
    MEM.try_with(|m| {
        let saved_peak = m.peak.get();
        m.peak.set(m.cur.get());
        MemSnapshot {
            start_total: m.total.get(),
            start_allocs: m.allocs.get(),
            saved_peak,
        }
    })
    .ok()
}

/// Ends per-span accounting: returns the span's memory deltas and
/// restores the enclosing span's watermark.
#[must_use]
pub fn span_exit(snap: MemSnapshot) -> MemDelta {
    MEM.try_with(|m| {
        let watermark = m.peak.get();
        m.peak.set(snap.saved_peak.max(watermark));
        MemDelta {
            peak_bytes: watermark.max(0) as u64,
            alloc_bytes: m.total.get().wrapping_sub(snap.start_total),
            allocs: m.allocs.get() - snap.start_allocs,
        }
    })
    .unwrap_or(MemDelta {
        peak_bytes: 0,
        alloc_bytes: 0,
        allocs: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The enable count is process-global; serialize the tests that
    /// observe it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn hooks_are_inert_without_a_guard() {
        let _l = LOCK.lock().unwrap();
        assert!(!is_tracking());
        on_alloc(1024);
        on_dealloc(1024);
        assert!(span_enter().is_none());
    }

    #[test]
    fn spans_see_their_own_peak_and_totals() {
        let _l = LOCK.lock().unwrap();
        let _guard = track();
        let outer = span_enter().expect("tracking on");
        on_alloc(100);
        {
            let inner = span_enter().expect("tracking on");
            on_alloc(500);
            on_dealloc(500);
            on_alloc(50);
            let d = span_exit(inner);
            assert_eq!(d.peak_bytes, 600, "inner peak is cur(100)+500");
            assert_eq!(d.alloc_bytes, 550);
            assert_eq!(d.allocs, 2);
        }
        on_dealloc(100);
        on_dealloc(50);
        let d = span_exit(outer);
        assert_eq!(d.peak_bytes, 600, "outer inherits the nested watermark");
        assert_eq!(d.alloc_bytes, 650);
        assert_eq!(d.allocs, 3);
    }

    #[test]
    fn guards_nest() {
        let _l = LOCK.lock().unwrap();
        let a = track();
        let b = track();
        drop(a);
        assert!(is_tracking());
        drop(b);
        assert!(!is_tracking());
    }
}
