//! Integration tests of the batch engine's core promise: batch results
//! are bit-identical to running the same queries sequentially through
//! [`Verifier`], at any worker count, any cache capacity, and under
//! forced hash collisions.

use gfab::engine::{BatchOp, BatchQuery, OwnedCircuit, QueryOutcome};
use gfab::field::nist::irreducible_polynomial;
use gfab::field::{Gf2Poly, GfContext};
use gfab::netlist::mutate::inject_random_bug;
use gfab::prelude::*;
use gfab::{ArtifactCache, Engine, EngineConfig};
use std::sync::Arc;

fn ctx_for(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

/// A mixed batch: duplicates, shared hierarchical sub-blocks, a refuted
/// query, and two fields.
fn mixed_batch() -> Vec<BatchQuery> {
    let m4 = irreducible_polynomial(4).unwrap();
    let m5 = irreducible_polynomial(5).unwrap();
    let c4 = ctx_for(4);
    let c5 = ctx_for(5);
    let mast4 = gfab::circuits::mastrovito_multiplier(&c4);
    let (buggy, _) = inject_random_bug(&mast4, 7);
    let q = |name: &str, modulus: &Gf2Poly, op: BatchOp| BatchQuery {
        name: name.into(),
        modulus: modulus.clone(),
        op,
    };
    vec![
        q(
            "mont-eq",
            &m4,
            BatchOp::Equiv {
                spec: mast4.clone(),
                impl_: OwnedCircuit::Hier(gfab::circuits::montgomery_multiplier_hier(&c4)),
            },
        ),
        q(
            "mont-eq-dup",
            &m4,
            BatchOp::Equiv {
                spec: mast4.clone(),
                impl_: OwnedCircuit::Hier(gfab::circuits::montgomery_multiplier_hier(&c4)),
            },
        ),
        q(
            "buggy",
            &m4,
            BatchOp::Equiv {
                spec: mast4.clone(),
                impl_: OwnedCircuit::Flat(buggy),
            },
        ),
        q(
            "adder-vs-mult",
            &m4,
            BatchOp::Equiv {
                spec: mast4,
                impl_: OwnedCircuit::Flat(gfab::circuits::gf_adder(&c4)),
            },
        ),
        q(
            "squarer5",
            &m5,
            BatchOp::Extract(OwnedCircuit::Flat(gfab::circuits::squarer(&c5))),
        ),
        q(
            "mont5",
            &m5,
            BatchOp::Extract(OwnedCircuit::Hier(
                gfab::circuits::montgomery_multiplier_hier(&c5),
            )),
        ),
    ]
}

/// A deterministic rendering of everything verdict-relevant in a query
/// outcome (functions, counterexamples, verdict kind) — no wall-clock
/// fields.
fn fingerprint(outcome: &QueryOutcome) -> String {
    let func = |f: &WordFunction| format!("{}", f.display());
    let cex = |c: &[Gf]| {
        c.iter()
            .map(|g| g.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    match outcome {
        QueryOutcome::Failed(e) => format!("failed:{e}"),
        QueryOutcome::TimedOut(e) => format!("timeout:{e}"),
        QueryOutcome::Extracted(r) => match (r.function(), r.as_flat()) {
            (Some(f), _) => format!("canonical:{}", func(f)),
            (None, Some(flat)) => format!("flat:{:?}", flat.outcome),
            (None, None) => "hier:none".into(),
        },
        QueryOutcome::Checked(r) => match r.verdict() {
            Verdict::Equivalent { function } => format!("eq:{}", func(function)),
            Verdict::Inequivalent {
                spec,
                impl_,
                counterexample,
            } => format!(
                "neq:{}|{}|{}",
                func(spec),
                func(impl_),
                counterexample.as_deref().map(cex).unwrap_or_default()
            ),
            Verdict::InequivalentBySimulation { counterexample } => {
                format!("neq-sim:{}", cex(counterexample))
            }
            Verdict::EquivalentBySat { conflicts } => format!("eq-sat:{conflicts}"),
            Verdict::InequivalentBySat {
                counterexample,
                conflicts,
            } => format!("neq-sat:{}:{conflicts}", cex(counterexample)),
            Verdict::Unknown { reason } => format!("unknown:{reason}"),
        },
    }
}

/// The sequential baseline: one standalone `Verifier` per query, no
/// engine, no cache.
fn sequential_fingerprints(queries: &[BatchQuery]) -> Vec<String> {
    queries
        .iter()
        .map(|q| {
            let ctx = GfContext::shared(q.modulus.clone()).unwrap();
            let v = Verifier::new(&ctx).threads(1);
            let outcome = match &q.op {
                BatchOp::Extract(c) => match v.extract(c.as_circuit()) {
                    Ok(r) => QueryOutcome::Extracted(Box::new(r)),
                    Err(e) => QueryOutcome::Failed(e.to_string()),
                },
                BatchOp::Equiv { spec, impl_ } => match v.check(spec, impl_.as_circuit()) {
                    Ok(r) => QueryOutcome::Checked(Box::new(r)),
                    Err(e) => QueryOutcome::Failed(e.to_string()),
                },
            };
            fingerprint(&outcome)
        })
        .collect()
}

#[test]
fn batch_matches_sequential_at_every_thread_count() {
    let queries = mixed_batch();
    let baseline = sequential_fingerprints(&queries);
    assert!(
        baseline.iter().any(|f| f.starts_with("neq")),
        "{baseline:?}"
    );
    assert!(baseline.iter().any(|f| f.starts_with("eq")), "{baseline:?}");
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(EngineConfig {
            threads,
            ..EngineConfig::default()
        });
        let report = engine.run_batch(&queries);
        let got: Vec<String> = report
            .results
            .iter()
            .map(|r| fingerprint(&r.outcome))
            .collect();
        assert_eq!(got, baseline, "threads = {threads}");
        assert!(
            report.cache.hits > 0,
            "duplicates and shared blocks must hit at threads = {threads}: {:?}",
            report.cache
        );
    }
}

#[test]
fn eviction_under_pressure_stays_sound() {
    // Capacity 1 forces constant thrashing: every structure evicts the
    // previous one. Verdicts must not change — eviction only costs
    // recomputation, never correctness.
    let queries = mixed_batch();
    let baseline = sequential_fingerprints(&queries);
    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 1,
        ..EngineConfig::default()
    });
    let cold = engine.run_batch(&queries);
    let warm = engine.run_batch(&queries);
    for (pass, report) in [("cold", &cold), ("warm", &warm)] {
        let got: Vec<String> = report
            .results
            .iter()
            .map(|r| fingerprint(&r.outcome))
            .collect();
        assert_eq!(got, baseline, "{pass} pass under cache pressure");
    }
    assert!(
        cold.cache.evictions > 0,
        "capacity 1 over many structures must evict: {:?}",
        cold.cache
    );
    assert!(cold.cache.entries <= 1);
}

#[test]
fn warm_repeat_of_extraction_batch_is_free() {
    let queries: Vec<BatchQuery> = mixed_batch()
        .into_iter()
        .filter(|q| matches!(q.op, BatchOp::Extract(_)))
        .collect();
    let engine = Engine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let cold = engine.run_batch(&queries);
    let warm = engine.run_batch(&queries);
    assert!(cold.work_units > 0);
    assert_eq!(
        warm.work_units, 0,
        "a fully warm extraction pass computes nothing"
    );
    assert!(warm.wall <= cold.wall * 4, "warm pass should not blow up");
}

#[test]
fn colliding_hash_prefixes_cannot_poison_the_cache() {
    // Simulate a 64-bit digest collision: two keys that agree on a short
    // prefix (and are filed under the SAME hash bucket) must still
    // resolve to their own values — the cache byte-verifies full keys.
    let cache: ArtifactCache<&'static str> = ArtifactCache::new(8);
    let key_a: Arc<[u8]> = Arc::from(&b"\x01\x02\x03circuit-alpha"[..]);
    let key_b: Arc<[u8]> = Arc::from(&b"\x01\x02\x03circuit-beta"[..]);
    let hash = 0xDEAD_BEEF_u64;
    cache.insert(hash, Arc::clone(&key_a), "alpha-result");
    assert_eq!(
        cache.lookup(hash, &key_b),
        None,
        "a colliding hash with different key bytes is a miss"
    );
    cache.insert(hash, Arc::clone(&key_b), "beta-result");
    assert_eq!(cache.lookup(hash, &key_a), Some("alpha-result"));
    assert_eq!(cache.lookup(hash, &key_b), Some("beta-result"));
}
