//! Parallel extraction must be bit-identical to serial extraction: the
//! thread budget is a performance knob, never a semantics knob. Every
//! generator in `gfab-circuits` is extracted with `threads = 1` and
//! `threads = 4` and the resulting polynomials (and stats that are
//! thread-independent) compared exactly, including injected-bug Case-2
//! completions and the sharded simulation counterexample search.

use gfab::circuits::{
    constant_multiplier, gf_adder, mastrovito_multiplier, monpro, montgomery_multiplier_hier,
    sqrt_circuit, squarer, trace_circuit, MonproOperand,
};
use gfab::core::Extraction;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::{GfContext, Rng};
use gfab::netlist::mutate::inject_random_bug;
use gfab::netlist::sim::random_equivalence_check_sharded;
use gfab::netlist::Netlist;
use gfab::Verifier;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

/// Extracts `nl` serially and with 4 threads and asserts the outcomes are
/// identical term by term (canonical or residual alike).
fn assert_flat_deterministic(nl: &Netlist, ctx: &Arc<GfContext>, label: &str) {
    let serial = Verifier::new(ctx).threads(1).extract(nl).unwrap();
    let threaded = Verifier::new(ctx).threads(4).extract(nl).unwrap();
    let (s, t) = (serial.as_flat().unwrap(), threaded.as_flat().unwrap());
    match (&s.outcome, &t.outcome) {
        (Extraction::Canonical(f1), Extraction::Canonical(f2)) => {
            assert_eq!(
                f1.poly(),
                f2.poly(),
                "{label}: canonical polynomials differ"
            );
        }
        (
            Extraction::Residual {
                remainder: r1,
                note: n1,
            },
            Extraction::Residual {
                remainder: r2,
                note: n2,
            },
        ) => {
            assert_eq!(r1, r2, "{label}: residuals differ");
            assert_eq!(n1, n2, "{label}: residual notes differ");
        }
        _ => panic!("{label}: serial and threaded reached different cases"),
    }
    // Work counters are functions of the algebra, not of the scheduling.
    assert_eq!(
        s.stats.reduction_steps, t.stats.reduction_steps,
        "{label}: step counts differ"
    );
    assert_eq!(
        s.stats.peak_terms, t.stats.peak_terms,
        "{label}: peak term counts differ"
    );
    assert_eq!(
        s.stats.cancellations, t.stats.cancellations,
        "{label}: cancellation counts differ"
    );
}

#[test]
fn every_generator_is_thread_deterministic() {
    for k in [2usize, 4, 8, 16] {
        let ctx = field(k);
        let cases: Vec<(String, Netlist)> = vec![
            ("mastrovito".into(), mastrovito_multiplier(&ctx)),
            (
                "monpro_word".into(),
                monpro(&ctx, "mm", MonproOperand::Word),
            ),
            (
                "monpro_const".into(),
                monpro(&ctx, "mmc", MonproOperand::Const(ctx.montgomery_r2())),
            ),
            (
                "montgomery_flat".into(),
                montgomery_multiplier_hier(&ctx).flatten(),
            ),
            ("squarer".into(), squarer(&ctx)),
            (
                "constant_multiplier".into(),
                constant_multiplier(&ctx, &ctx.from_u64(3)),
            ),
            ("gf_adder".into(), gf_adder(&ctx)),
            ("sqrt".into(), sqrt_circuit(&ctx)),
            ("trace".into(), trace_circuit(&ctx)),
        ];
        for (name, nl) in &cases {
            assert_flat_deterministic(nl, &ctx, &format!("k={k} {name}"));
        }
    }
}

#[test]
fn hierarchical_extraction_is_thread_deterministic() {
    for k in [4usize, 8, 16] {
        let ctx = field(k);
        let design = montgomery_multiplier_hier(&ctx);
        let serial = Verifier::new(&ctx).threads(1).extract(&design).unwrap();
        let threaded = Verifier::new(&ctx).threads(4).extract(&design).unwrap();
        let (s, t) = (serial.as_hier().unwrap(), threaded.as_hier().unwrap());
        assert_eq!(
            s.function.poly(),
            t.function.poly(),
            "k={k}: composed functions differ"
        );
        assert_eq!(s.blocks.len(), t.blocks.len());
        for ((n1, f1, s1), (n2, f2, s2)) in s.blocks.iter().zip(&t.blocks) {
            assert_eq!(n1, n2, "k={k}: block order differs");
            assert_eq!(f1.poly(), f2.poly(), "k={k} {n1}: block polynomials differ");
            assert_eq!(
                s1.reduction_steps, s2.reduction_steps,
                "k={k} {n1}: step counts differ"
            );
        }
    }
}

#[test]
fn injected_bugs_case2_completion_is_thread_deterministic() {
    // Buggy circuits land in Case 2; the completion (and, when it fails,
    // the residual) must not depend on the thread budget either.
    // k=8 seeds 3..5 rewire input-side gates whose Case-2 completions are
    // far too expensive for a debug-mode test run; every other seed
    // completes (or yields a residual) quickly.
    for (k, seeds) in [(4usize, &[0u64, 1, 2, 3, 4, 5][..]), (8, &[0, 1, 2])] {
        let ctx = field(k);
        let golden = mastrovito_multiplier(&ctx);
        for &seed in seeds {
            let (bad, what) = inject_random_bug(&golden, seed);
            assert_flat_deterministic(&bad, &ctx, &format!("k={k} bug seed {seed} ({what})"));
        }
    }
}

/// A canonical rendering of a verdict for exact comparison (the plain
/// `Debug` form leaks `HashMap` iteration order from the ring's name
/// table, which is not semantically meaningful).
fn verdict_fingerprint(v: &gfab::core::equiv::Verdict) -> String {
    use gfab::core::equiv::Verdict;
    match v {
        Verdict::Equivalent { function } => format!("Equivalent Z = {}", function.display()),
        Verdict::Inequivalent {
            spec,
            impl_,
            counterexample,
        } => format!(
            "Inequivalent {} vs {} cex {counterexample:?}",
            spec.display(),
            impl_.display()
        ),
        Verdict::InequivalentBySimulation { counterexample } => {
            format!("InequivalentBySimulation cex {counterexample:?}")
        }
        Verdict::EquivalentBySat { conflicts } => format!("EquivalentBySat {conflicts}"),
        Verdict::InequivalentBySat {
            counterexample,
            conflicts,
        } => format!("InequivalentBySat cex {counterexample:?} {conflicts}"),
        Verdict::Unknown { reason } => format!("Unknown {reason}"),
    }
}

#[test]
fn budgeted_checks_are_thread_deterministic() {
    // A work cap must stay deterministic under parallelism: whether it
    // trips depends only on the total algebraic work a query needs, never
    // on the thread schedule. Runs that complete within the cap are
    // bit-identical to uncapped ones; runs that exhaust it funnel into
    // the single-threaded SAT fallback, whose verdict is deterministic
    // too. Either way the final verdict cannot depend on the thread
    // budget.
    let ctx = field(4);
    let golden = mastrovito_multiplier(&ctx);
    for (cap, label) in [(u64::MAX, "roomy"), (1u64, "tight")] {
        for seed in 0..4u64 {
            let (bad, what) = inject_random_bug(&golden, seed);
            let run = |threads: usize| {
                Verifier::new(&ctx)
                    .threads(threads)
                    .work_cap(cap)
                    .check(&golden, &bad)
                    .unwrap()
            };
            let (one, four) = (run(1), run(4));
            assert_eq!(
                verdict_fingerprint(&one.verdict),
                verdict_fingerprint(&four.verdict),
                "{label} cap, seed {seed} ({what}): verdicts differ between thread budgets"
            );
        }
    }
}

#[test]
fn roomy_work_cap_does_not_perturb_extraction() {
    // A cap that never trips must leave the result (and the
    // thread-independent work counters) exactly as the uncapped run.
    for k in [4usize, 8] {
        let ctx = field(k);
        let nl = mastrovito_multiplier(&ctx);
        let plain = Verifier::new(&ctx).threads(4).extract(&nl).unwrap();
        let capped = Verifier::new(&ctx)
            .threads(4)
            .work_cap(1 << 40)
            .extract(&nl)
            .unwrap();
        assert_eq!(
            plain.function().unwrap().poly(),
            capped.function().unwrap().poly(),
            "k={k}: roomy cap changed the canonical polynomial"
        );
        assert_eq!(
            plain.stats().reduction_steps,
            capped.stats().reduction_steps,
            "k={k}: roomy cap changed the step count"
        );
    }
}

#[test]
fn sharded_counterexample_search_is_thread_deterministic() {
    // The 64-way bit-parallel sweep shards across threads; the reported
    // counterexample must be the same (lowest-index) one regardless.
    let ctx = field(8);
    let golden = mastrovito_multiplier(&ctx);
    for seed in 0..6u64 {
        let (bad, what) = inject_random_bug(&golden, seed);
        let run = |threads: usize| {
            let mut rng = Rng::seed_from_u64(0xD15C);
            random_equivalence_check_sharded(&golden, &bad, &ctx, 256, &mut rng, threads)
        };
        assert_eq!(
            run(1),
            run(4),
            "seed {seed} ({what}): counterexamples differ between thread budgets"
        );
    }
}
