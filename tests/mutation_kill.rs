//! Mutation-kill battery: `Verifier::check` must never return a silent
//! false `Equivalent` for an injected bug.
//!
//! `inject_random_bug` produces both of its mutation variants (gate-kind
//! swaps and wire swaps) across the seed range; every mutation that
//! genuinely changes the circuit function (per the exhaustive-simulation
//! oracle) must be refuted, and every function-preserving mutation must
//! still be proven equivalent. The battery runs twice: with an unlimited
//! budget (the word-level pipeline refutes), and under a work cap so
//! tight that the word-level algebra cannot finish — there the SAT
//! fallback rung must do the refuting.

use gfab::circuits::mastrovito_multiplier;
use gfab::core::equiv::Verdict;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::netlist::mutate::{inject_random_bug, Mutation};
use gfab::netlist::sim::{exhaustive_check, simulate_word};
use gfab::Verifier;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

#[test]
fn all_mutations_killed_with_unlimited_budget() {
    let ctx = field(3);
    let golden = mastrovito_multiplier(&ctx);
    let verifier = Verifier::new(&ctx);
    let (mut kind_swaps, mut wire_swaps, mut real_bugs) = (0usize, 0usize, 0usize);
    for seed in 0..32u64 {
        let (bad, what) = inject_random_bug(&golden, seed);
        match what {
            Mutation::GateTypeSwap { .. } => kind_swaps += 1,
            Mutation::WireSwap { .. } => wire_swaps += 1,
            Mutation::StuckAt { .. } | Mutation::DropTerm { .. } => {
                unreachable!("inject_random_bug draws only swap mutations")
            }
        }
        let truly_equal = exhaustive_check(&bad, &ctx, |w| simulate_word(&golden, &ctx, w)).is_ok();
        let report = verifier.check(&golden, &bad).unwrap();
        assert_eq!(
            report.verdict.is_equivalent(),
            truly_equal,
            "seed {seed} ({what}): {}",
            if truly_equal {
                "benign mutation wrongly refuted"
            } else {
                "real bug silently passed as Equivalent"
            }
        );
        if !truly_equal {
            real_bugs += 1;
            // A refutation must come with evidence the caller can replay.
            match &report.verdict {
                Verdict::Inequivalent { counterexample, .. } => {
                    let cex = counterexample.as_ref().expect("tiny field: cex exists");
                    assert_ne!(
                        simulate_word(&golden, &ctx, cex),
                        simulate_word(&bad, &ctx, cex),
                        "seed {seed} ({what}): counterexample does not distinguish"
                    );
                }
                Verdict::InequivalentBySimulation { counterexample }
                | Verdict::InequivalentBySat { counterexample, .. } => {
                    assert_ne!(
                        simulate_word(&golden, &ctx, counterexample),
                        simulate_word(&bad, &ctx, counterexample),
                        "seed {seed} ({what}): counterexample does not distinguish"
                    );
                }
                other => panic!("seed {seed} ({what}): unexpected verdict {other:?}"),
            }
        }
    }
    // The seed range must have exercised both mutation variants, and most
    // mutations of a multiplier are real bugs.
    assert!(kind_swaps > 0, "no gate-kind swaps among 32 seeds");
    assert!(wire_swaps > 0, "no wire swaps among 32 seeds");
    assert!(
        real_bugs >= 16,
        "only {real_bugs}/32 mutations were real bugs"
    );
}

#[test]
fn tight_work_cap_refutes_via_sat_fallback() {
    // A one-unit work cap: the guided reduction / Case-2 completion trips
    // almost immediately, the word-level verdict degrades to Unknown, and
    // the SAT rung of the Verifier ladder must still refute every real
    // bug — no silent false Equivalent under resource pressure.
    let ctx = field(4);
    let golden = mastrovito_multiplier(&ctx);
    let verifier = Verifier::new(&ctx).work_cap(1);
    let mut sat_refutations = 0usize;
    for seed in 0..12u64 {
        let (bad, what) = inject_random_bug(&golden, seed);
        let truly_equal = exhaustive_check(&bad, &ctx, |w| simulate_word(&golden, &ctx, w)).is_ok();
        let report = verifier.check(&golden, &bad).unwrap();
        assert_eq!(
            report.verdict.is_equivalent(),
            truly_equal,
            "seed {seed} ({what}): unsound verdict under tight budget: {:?}",
            report.verdict
        );
        if let Verdict::InequivalentBySat { counterexample, .. } = &report.verdict {
            sat_refutations += 1;
            assert_ne!(
                simulate_word(&golden, &ctx, counterexample),
                simulate_word(&bad, &ctx, counterexample),
                "seed {seed} ({what}): SAT counterexample does not distinguish"
            );
        }
    }
    assert!(
        sat_refutations > 0,
        "the SAT fallback never fired: the work cap did not bite"
    );
}
