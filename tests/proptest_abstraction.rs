//! Randomized property tests of the abstraction engine itself: for
//! *random* circuits, the extracted canonical polynomial must agree with
//! simulation everywhere (the Abstraction Theorem, Theorem 4.2), and
//! independent derivation routes must coincide (Corollary 4.1 uniqueness).
//! Deterministic seeds replace an earlier proptest harness so the suite
//! runs without external dependencies.

use gfab::core::interpolate::interpolate;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::{GfContext, Rng};
use gfab::netlist::random::{random_circuit, RandomCircuitSpec};
use gfab::netlist::sim::simulate_word;
use gfab::Verifier;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

/// Theorem 4.2 on random 2-input circuits over F_4: the canonical
/// polynomial (Case 1 or Case-2-completed) equals the circuit as a
/// function, verified exhaustively.
#[test]
fn abstraction_theorem_on_random_circuits_f4() {
    let ctx = field(2);
    let verifier = Verifier::new(&ctx);
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 2,
            num_gates: rng.random_range(4..40),
            seed: rng.next_u64(),
        });
        let report = verifier.extract(&nl).unwrap();
        let f = report
            .function()
            .expect("completion always succeeds on F_4");
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                let sim = simulate_word(&nl, &ctx, &[a.clone(), b.clone()]);
                assert_eq!(f.eval(&[a.clone(), b.clone()]), sim, "seed {seed}");
            }
        }
    }
}

/// Uniqueness (Corollary 4.1): Gröbner extraction and Lagrange
/// interpolation produce the identical polynomial.
#[test]
fn uniqueness_of_canonical_form_f8() {
    let ctx = field(3);
    let verifier = Verifier::new(&ctx);
    for seed in 0..24u64 {
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 1,
            width: 3,
            num_gates: 25,
            seed,
        });
        let report = verifier.extract(&nl).unwrap();
        let via_gb = report
            .function()
            .cloned()
            .expect("Case-2 completion succeeds on F_8");
        let via_lagrange = interpolate(&nl, &ctx).unwrap();
        assert!(via_gb.matches(&via_lagrange), "seed {seed}");
    }
}

/// Degree bound of the unique canonical representation (Definition 3.1):
/// every exponent is at most q − 1.
#[test]
fn canonical_exponents_below_field_order() {
    let ctx = field(2);
    let verifier = Verifier::new(&ctx);
    for seed in 0..24u64 {
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 2,
            num_gates: 16,
            seed,
        });
        let report = verifier.extract(&nl).unwrap();
        let f = report.function().cloned().unwrap();
        for (m, _) in f.poly().terms() {
            for &(_, e) in m.factors() {
                assert!(e <= 3, "seed {seed}: exponent {e} exceeds q-1 = 3");
            }
        }
    }
}

/// Mutating a circuit never breaks the engine: extraction still returns a
/// function that matches simulation.
#[test]
fn mutations_never_break_extraction() {
    let ctx = field(2);
    let verifier = Verifier::new(&ctx);
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 2,
            num_gates: 12,
            seed: rng.next_u64(),
        });
        let (bad, _) = gfab::netlist::mutate::inject_random_bug(&nl, rng.next_u64());
        let report = verifier.extract(&bad).unwrap();
        let f = report.function().expect("F_4 completion");
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                let sim = simulate_word(&bad, &ctx, &[a.clone(), b.clone()]);
                assert_eq!(f.eval(&[a.clone(), b.clone()]), sim, "seed {seed}");
            }
        }
    }
}
