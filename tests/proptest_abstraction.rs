//! Property-based tests of the abstraction engine itself: for *random*
//! circuits, the extracted canonical polynomial must agree with
//! simulation everywhere (the Abstraction Theorem, Theorem 4.2), and
//! independent derivation routes must coincide (Corollary 4.1 uniqueness).

use gfab::core::interpolate::interpolate;
use gfab::core::{extract_word_polynomial, ExtractOptions};
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::netlist::random::{random_circuit, RandomCircuitSpec};
use gfab::netlist::sim::simulate_word;
use proptest::prelude::*;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 4.2 on random 2-input circuits over F_4: the canonical
    /// polynomial (Case 1 or Case-2-completed) equals the circuit as a
    /// function, verified exhaustively.
    #[test]
    fn abstraction_theorem_on_random_circuits_f4(seed in 0u64..5000, gates in 4usize..40) {
        let ctx = field(2);
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 2,
            num_gates: gates,
            seed,
        });
        let result = extract_word_polynomial(&nl, &ctx).unwrap();
        let f = result.canonical().expect("completion always succeeds on F_4");
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                let sim = simulate_word(&nl, &ctx, &[a.clone(), b.clone()]);
                prop_assert_eq!(f.eval(&[a.clone(), b.clone()]), sim);
            }
        }
    }

    /// Uniqueness (Corollary 4.1): Gröbner extraction and Lagrange
    /// interpolation produce the identical polynomial.
    #[test]
    fn uniqueness_of_canonical_form_f8(seed in 0u64..5000) {
        let ctx = field(3);
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 1,
            width: 3,
            num_gates: 25,
            seed,
        });
        let via_gb = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .expect("Case-2 completion succeeds on F_8");
        let via_lagrange = interpolate(&nl, &ctx).unwrap();
        prop_assert!(via_gb.matches(&via_lagrange));
    }

    /// Degree bound of the unique canonical representation
    /// (Definition 3.1): every exponent is at most q − 1.
    #[test]
    fn canonical_exponents_below_field_order(seed in 0u64..5000) {
        let ctx = field(2);
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 2,
            num_gates: 16,
            seed,
        });
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        for (m, _) in f.poly().terms() {
            for &(_, e) in m.factors() {
                prop_assert!(e <= 3, "exponent {e} exceeds q-1 = 3");
            }
        }
    }

    /// Mutating a circuit never breaks the engine: extraction still
    /// returns a function that matches simulation.
    #[test]
    fn mutations_never_break_extraction(seed in 0u64..1000, bug_seed in 0u64..50) {
        let ctx = field(2);
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 2,
            num_gates: 12,
            seed,
        });
        let (bad, _) = gfab::netlist::mutate::inject_random_bug(&nl, bug_seed);
        let result = gfab::core::extract_word_polynomial_with(
            &bad,
            &ctx,
            &ExtractOptions::default(),
        ).unwrap();
        let f = result.canonical().expect("F_4 completion");
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                let sim = simulate_word(&bad, &ctx, &[a.clone(), b.clone()]);
                prop_assert_eq!(f.eval(&[a.clone(), b.clone()]), sim);
            }
        }
    }
}
