//! Circuits with more than two input words: the paper notes the approach
//! "easily generalizes to circuits with arbitrary number of word-level
//! inputs", i.e. `Z = F(A_1, …, A_n)`. These tests exercise that claim
//! with 3-input datapaths built from the generator blocks.

use gfab::circuits::{gf_adder, mastrovito_multiplier};
use gfab::core::interpolate::interpolate;
use gfab::core::{extract_word_polynomial, ExtractOptions};
use gfab::field::nist::irreducible_polynomial;
use gfab::field::{GfContext, Rng};
use gfab::netlist::hierarchy::{BlockInst, HierDesign, Signal};
use gfab::netlist::sim::simulate_word;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

/// Z = (A + B) · C as a hierarchical design.
fn mac_design(ctx: &Arc<GfContext>) -> HierDesign {
    let k = ctx.k();
    HierDesign {
        name: format!("mac_{k}"),
        inputs: vec![("A".into(), k), ("B".into(), k), ("C".into(), k)],
        blocks: vec![
            BlockInst {
                name: "add".into(),
                netlist: gf_adder(ctx),
                connections: vec![Signal::PrimaryInput(0), Signal::PrimaryInput(1)],
            },
            BlockInst {
                name: "mul".into(),
                netlist: mastrovito_multiplier(ctx),
                connections: vec![Signal::BlockOutput(0), Signal::PrimaryInput(2)],
            },
        ],
        output: Signal::BlockOutput(1),
        output_name: "Z".into(),
    }
}

#[test]
fn three_input_mac_flat_extraction() {
    for k in [3usize, 4, 8] {
        let ctx = field(k);
        let flat = mac_design(&ctx).flatten();
        let f = extract_word_polynomial(&flat, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap_or_else(|| panic!("k={k}: Case 1 expected"));
        // Canonical form of (A+B)*C is A*C + B*C (expanded).
        assert_eq!(format!("{}", f.display()), "A*C + B*C", "k={k}");
    }
}

#[test]
fn three_input_mac_hierarchical_extraction() {
    let ctx = field(8);
    let design = mac_design(&ctx);
    let hier =
        gfab::core::hier::extract_hierarchical(&design, &ctx, &ExtractOptions::default()).unwrap();
    assert_eq!(format!("{}", hier.function.display()), "A*C + B*C");
    // Spot-check against simulation.
    let flat = design.flatten();
    let mut rng = Rng::from_entropy();
    for _ in 0..20 {
        let words: Vec<_> = (0..3).map(|_| ctx.random(&mut rng)).collect();
        assert_eq!(
            hier.function.eval(&words),
            simulate_word(&flat, &ctx, &words)
        );
    }
}

#[test]
fn three_input_mac_matches_interpolation() {
    let ctx = field(3); // q^d = 8^3 = 512 points, well within the oracle's budget
    let flat = mac_design(&ctx).flatten();
    let via_gb = extract_word_polynomial(&flat, &ctx)
        .unwrap()
        .canonical()
        .cloned()
        .unwrap();
    let via_lagrange = interpolate(&flat, &ctx).unwrap();
    assert!(via_gb.matches(&via_lagrange));
}

#[test]
fn deep_composition_abc_product() {
    // Z = A·B·C via two multiplier levels.
    let ctx = field(4);
    let design = HierDesign {
        name: "abc".into(),
        inputs: vec![("A".into(), 4), ("B".into(), 4), ("C".into(), 4)],
        blocks: vec![
            BlockInst {
                name: "m0".into(),
                netlist: mastrovito_multiplier(&ctx),
                connections: vec![Signal::PrimaryInput(0), Signal::PrimaryInput(1)],
            },
            BlockInst {
                name: "m1".into(),
                netlist: mastrovito_multiplier(&ctx),
                connections: vec![Signal::BlockOutput(0), Signal::PrimaryInput(2)],
            },
        ],
        output: Signal::BlockOutput(1),
        output_name: "Z".into(),
    };
    let flat = design.flatten();
    let f = extract_word_polynomial(&flat, &ctx)
        .unwrap()
        .canonical()
        .cloned()
        .unwrap();
    assert_eq!(format!("{}", f.display()), "A*B*C");
    let hier =
        gfab::core::hier::extract_hierarchical(&design, &ctx, &ExtractOptions::default()).unwrap();
    assert!(hier.function.matches(&f));
}

#[test]
fn case2_unavailable_above_k63_reports_residual() {
    // A buggy circuit at k = 64: Case-2 completion needs k <= 63, so the
    // extraction returns the residual with an explanatory note.
    let ctx = field(64);
    let golden = mastrovito_multiplier(&ctx);
    let mut found_residual = false;
    for seed in 0..4u64 {
        let (bad, _) = gfab::netlist::mutate::inject_random_bug(&golden, seed);
        let result = extract_word_polynomial(&bad, &ctx).unwrap();
        if let gfab::core::Extraction::Residual { note, remainder } = &result.outcome {
            found_residual = true;
            assert!(note.contains("k <= 63"), "note: {note}");
            assert!(remainder.num_terms() > 0);
        }
    }
    assert!(found_residual, "some mutation must land in Case 2");
}
