//! Differential test battery: every verification engine in the workspace
//! must return the same verdict on the same (Spec, Impl) pair.
//!
//! Three independent engines are compared on each pair:
//!
//! * the word-level abstraction pipeline (`Verifier::check` — the paper's
//!   contribution, including its simulation and SAT fallback rungs),
//! * the CDCL SAT miter check (`check_equivalence_sat`),
//! * exhaustive co-simulation (ground truth; input spaces are kept small
//!   enough to enumerate).
//!
//! Pairs are drawn from seeded random netlists and from every circuit
//! generator in `gfab-circuits` at k ≤ 8. On any disagreement the failing
//! netlists are printed in the repo's text format along with the seed, so
//! a failure is reproducible from the log alone.

use gfab::circuits::{
    constant_multiplier, gf_adder, mastrovito_multiplier, montgomery_multiplier_hier, sqrt_circuit,
    squarer, trace_circuit,
};
use gfab::core::equiv::Verdict;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::netlist::format::emit;
use gfab::netlist::mutate::inject_random_bug;
use gfab::netlist::random::{random_circuit, RandomCircuitSpec};
use gfab::netlist::sim::{exhaustive_check, simulate_word};
use gfab::netlist::Netlist;
use gfab::sat::equiv::{check_equivalence_sat, SatVerdict};
use gfab::Verifier;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

/// Runs all three engines on the pair and panics — printing both netlists
/// and the label — unless all of them agree with the exhaustive ground
/// truth.
fn assert_engines_agree(label: &str, spec: &Netlist, impl_: &Netlist, ctx: &Arc<GfContext>) {
    let dump = || format!("spec:\n{}\nimpl:\n{}", emit(spec), emit(impl_));

    // Ground truth: exhaustive co-simulation over the full input space.
    let truly_equal = exhaustive_check(impl_, ctx, |w| simulate_word(spec, ctx, w)).is_ok();

    // Engine 1: the word-level pipeline (full budget — every verdict it
    // can produce is a decision; Unknown here is a failure).
    let word = Verifier::new(ctx)
        .threads(2)
        .check(spec, impl_)
        .unwrap_or_else(|e| panic!("{label}: word-level engine errored: {e}\n{}", dump()));
    let word_equal = match &word.verdict {
        Verdict::Equivalent { .. } | Verdict::EquivalentBySat { .. } => true,
        Verdict::Inequivalent { .. }
        | Verdict::InequivalentBySimulation { .. }
        | Verdict::InequivalentBySat { .. } => false,
        Verdict::Unknown { reason } => {
            panic!(
                "{label}: word-level engine returned Unknown ({reason})\n{}",
                dump()
            )
        }
    };

    // Engine 2: the SAT miter.
    let sat = check_equivalence_sat(spec, impl_, u64::MAX);
    let sat_equal = match sat.verdict {
        SatVerdict::Equivalent => true,
        SatVerdict::Counterexample(_) => false,
        SatVerdict::Unknown(i) => {
            panic!("{label}: SAT engine returned Unknown ({i})\n{}", dump())
        }
    };

    assert_eq!(
        word_equal,
        truly_equal,
        "{label}: word-level engine disagrees with exhaustive simulation\n{}",
        dump()
    );
    assert_eq!(
        sat_equal,
        truly_equal,
        "{label}: SAT engine disagrees with exhaustive simulation\n{}",
        dump()
    );
}

#[test]
fn random_netlists_all_engines_agree() {
    // Seeded random DAGs over small words: each circuit is compared against
    // itself (must be equivalent) and against a mutated copy (verdict set
    // by exhaustive simulation — some mutations are benign).
    let ctx = field(3);
    for seed in 0..16u64 {
        let spec = RandomCircuitSpec {
            num_input_words: 2,
            width: 3,
            num_gates: 24,
            seed,
        };
        let nl = random_circuit(&spec);
        assert_engines_agree(&format!("random seed {seed} (self)"), &nl, &nl, &ctx);
        let (mutated, what) = inject_random_bug(&nl, seed);
        assert_engines_agree(
            &format!("random seed {seed} (mutated: {what})"),
            &nl,
            &mutated,
            &ctx,
        );
    }
}

#[test]
fn multiplier_architectures_all_engines_agree() {
    // Structurally dissimilar multipliers: Mastrovito vs. flattened
    // Montgomery, equivalent at every k, plus one injected bug per k.
    for k in [2usize, 3, 4, 6] {
        let ctx = field(k);
        let spec = mastrovito_multiplier(&ctx);
        let impl_ = montgomery_multiplier_hier(&ctx).flatten();
        assert_engines_agree(
            &format!("k={k} mastrovito vs montgomery"),
            &spec,
            &impl_,
            &ctx,
        );
        let (bad, what) = inject_random_bug(&impl_, k as u64);
        assert_engines_agree(
            &format!("k={k} mastrovito vs buggy montgomery ({what})"),
            &spec,
            &bad,
            &ctx,
        );
    }
}

#[test]
fn every_generator_all_engines_agree() {
    // Every circuit generator, self-paired (equivalent) and paired against
    // a mutated copy (ground truth decides), at k ≤ 8.
    for k in [3usize, 4] {
        let ctx = field(k);
        let cases: Vec<(&str, Netlist)> = vec![
            ("mastrovito", mastrovito_multiplier(&ctx)),
            (
                "montgomery_flat",
                montgomery_multiplier_hier(&ctx).flatten(),
            ),
            ("squarer", squarer(&ctx)),
            ("adder", gf_adder(&ctx)),
            ("constant_mult", constant_multiplier(&ctx, &ctx.from_u64(3))),
            ("sqrt", sqrt_circuit(&ctx)),
            ("trace", trace_circuit(&ctx)),
        ];
        for (name, nl) in &cases {
            assert_engines_agree(&format!("k={k} {name} (self)"), nl, nl, &ctx);
            // Some generators (the trace at these k) compile to zero
            // gates — nothing to mutate.
            if !nl.gates().iter().any(|g| g.kind.arity() == 2) {
                continue;
            }
            for seed in 0..3u64 {
                let (bad, what) = inject_random_bug(nl, seed);
                assert_engines_agree(
                    &format!("k={k} {name} seed {seed} ({what})"),
                    nl,
                    &bad,
                    &ctx,
                );
            }
        }
    }
}

#[test]
fn k8_mastrovito_bugs_all_engines_agree() {
    // The largest exhaustively-checkable size (16 input bits): the
    // simulation pre-check and Case-2 paths of the word-level pipeline are
    // both live here.
    let ctx = field(8);
    let spec = mastrovito_multiplier(&ctx);
    for seed in 0..4u64 {
        let (bad, what) = inject_random_bug(&spec, seed);
        assert_engines_agree(&format!("k=8 seed {seed} ({what})"), &spec, &bad, &ctx);
    }
}
