//! Cross-method integration tests: the same verification questions
//! answered by every engine in the workspace must agree.
//!
//! * guided RATO extraction (the paper's contribution)
//! * unguided full Gröbner basis (Theorem 4.2 baseline)
//! * Lagrange interpolation (exhaustive oracle)
//! * ideal membership against a given spec ([5] baseline)
//! * SAT miter (ABC/CSAT stand-in)
//! * plain simulation

use gfab::circuits::{
    constant_multiplier, gf_adder, mastrovito_multiplier, monpro, montgomery_multiplier_hier,
    squarer, MonproOperand,
};
use gfab::core::equiv::{check_equivalence, Verdict};
use gfab::core::fullgb::{full_gb_abstraction, CircuitVarOrder, FullGbOutcome};
use gfab::core::ideal_membership::{multiplier_spec, spec_ring, verify_against_spec};
use gfab::core::interpolate::interpolate;
use gfab::core::{extract_word_polynomial, ExtractOptions};
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::poly::buchberger::GbLimits;
use gfab::poly::{Monomial, Poly, VarId};
use gfab::sat::equiv::{check_equivalence_sat, SatVerdict};
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

#[test]
fn mastrovito_canonical_is_product_for_k2_to_k16() {
    for k in [2usize, 3, 4, 5, 8, 12, 16] {
        let ctx = field(k);
        let nl = mastrovito_multiplier(&ctx);
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap_or_else(|| panic!("k={k}: expected Case 1"));
        assert_eq!(format!("{}", f.display()), "A*B", "k={k}");
    }
}

#[test]
fn monpro_canonical_is_rinv_ab() {
    for k in [3usize, 4, 8] {
        let ctx = field(k);
        let nl = monpro(&ctx, "mm", MonproOperand::Word);
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        // Expected: R⁻¹·A·B.
        let rinv = ctx.montgomery_r_inv();
        let expected = Poly::from_terms(vec![(
            Monomial::from_factors(vec![(VarId(0), 1), (VarId(1), 1)]),
            rinv,
        )]);
        assert_eq!(f.poly(), &expected, "k={k}");
    }
}

#[test]
fn squarer_canonical_is_a_squared() {
    for k in [2usize, 3, 4, 8] {
        let ctx = field(k);
        let nl = squarer(&ctx);
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        let expected = Poly::from_terms(vec![(Monomial::var_pow(VarId(0), 2), ctx.one())]);
        assert_eq!(f.poly(), &expected, "k={k}");
    }
}

#[test]
fn sqrt_circuit_canonical_is_high_degree_power() {
    // √A = A^(2^(k-1)): the canonical polynomial has a single term of
    // very high degree — a stress test beyond degree-2 multiplier forms.
    for k in [2usize, 3, 4, 6, 8] {
        let ctx = field(k);
        let nl = gfab::circuits::sqrt_circuit(&ctx);
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        let expected =
            Poly::from_terms(vec![(Monomial::var_pow(VarId(0), 1 << (k - 1)), ctx.one())]);
        assert_eq!(f.poly(), &expected, "k={k}");
        // And it must functionally invert the squarer.
        for a in ctx.iter_elements() {
            assert_eq!(f.eval(std::slice::from_ref(&ctx.square(&a))), a);
        }
    }
}

#[test]
fn trace_circuit_canonical_is_trace_polynomial() {
    // Tr(A) = A + A² + A⁴ + … + A^(2^(k-1)): k terms, exercising narrow
    // (1-bit) output words and many-term canonical forms.
    for k in [2usize, 3, 4, 8] {
        let ctx = field(k);
        let nl = gfab::circuits::trace_circuit(&ctx);
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        let expected = Poly::from_terms(
            (0..k)
                .map(|i| (Monomial::var_pow(VarId(0), 1 << i), ctx.one()))
                .collect(),
        );
        assert_eq!(f.poly(), &expected, "k={k}");
    }
}

#[test]
fn strash_preserves_canonical_polynomial() {
    let ctx = field(8);
    for nl in [
        mastrovito_multiplier(&ctx),
        montgomery_multiplier_hier(&ctx).flatten(),
    ] {
        let (hashed, _) = gfab::netlist::strash::structural_hash(&nl);
        let f1 = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        let f2 = extract_word_polynomial(&hashed, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        assert!(f1.matches(&f2), "{}", nl.name());
    }
}

#[test]
fn parsed_specs_drive_ideal_membership() {
    // The textual spec path used by `gfab verify-spec`.
    let ctx = field(4);
    let nl = gfab::circuits::squarer(&ctx);
    let sr = spec_ring(&nl, &ctx);
    let good = gfab::poly::parse_poly("A^2", &sr.ring).unwrap();
    assert!(verify_against_spec(&nl, &ctx, &sr, &good).unwrap().verified);
    let bad = gfab::poly::parse_poly("A^2 + a", &sr.ring).unwrap();
    assert!(!verify_against_spec(&nl, &ctx, &sr, &bad).unwrap().verified);
}

#[test]
fn adder_and_constant_multiplier_canonical_forms() {
    let ctx = field(5);
    let add = gf_adder(&ctx);
    let f = extract_word_polynomial(&add, &ctx)
        .unwrap()
        .canonical()
        .cloned()
        .unwrap();
    assert_eq!(format!("{}", f.display()), "A + B");

    let c = ctx.from_u64(0b10110);
    let cm = constant_multiplier(&ctx, &c);
    let g = extract_word_polynomial(&cm, &ctx)
        .unwrap()
        .canonical()
        .cloned()
        .unwrap();
    let expected = Poly::from_terms(vec![(Monomial::var(VarId(0)), c)]);
    assert_eq!(g.poly(), &expected);
}

#[test]
fn three_extraction_routes_agree_on_generators() {
    // Guided, full-GB and Lagrange must produce identical canonical forms.
    for k in [2usize, 3] {
        let ctx = field(k);
        for nl in [
            mastrovito_multiplier(&ctx),
            monpro(&ctx, "mm", MonproOperand::Word),
            squarer(&ctx),
        ] {
            let guided = extract_word_polynomial(&nl, &ctx)
                .unwrap()
                .canonical()
                .cloned()
                .unwrap();
            let lagrange = interpolate(&nl, &ctx).unwrap();
            assert!(
                guided.matches(&lagrange),
                "k={k} {}: guided {} vs lagrange {}",
                nl.name(),
                guided.display(),
                lagrange.display()
            );
            match full_gb_abstraction(
                &nl,
                &ctx,
                CircuitVarOrder::ReverseTopological,
                &GbLimits::default(),
            )
            .unwrap()
            {
                FullGbOutcome::Canonical { function, .. } => {
                    assert!(function.matches(&guided), "k={k} {}", nl.name());
                }
                FullGbOutcome::GaveUp { reason, .. } => {
                    panic!("k={k} {} full GB gave up: {reason}", nl.name())
                }
            }
        }
    }
}

#[test]
fn all_engines_agree_on_equivalence_and_bugs() {
    let k = 4usize;
    let ctx = field(k);
    let spec = mastrovito_multiplier(&ctx);
    let montgomery = montgomery_multiplier_hier(&ctx).flatten();

    // Equivalent pair: algebraic and SAT agree.
    let alg = check_equivalence(&spec, &montgomery, &ctx, &ExtractOptions::default()).unwrap();
    assert!(alg.verdict.is_equivalent());
    let sat = check_equivalence_sat(&spec, &montgomery, u64::MAX);
    assert_eq!(sat.verdict, SatVerdict::Equivalent);

    // Ideal membership with the product spec passes both circuits.
    for nl in [&spec, &montgomery] {
        let sr = spec_ring(nl, &ctx);
        let f = multiplier_spec(&sr, &ctx);
        assert!(verify_against_spec(nl, &ctx, &sr, &f).unwrap().verified);
    }

    // Buggy pairs: verdicts agree across engines.
    for seed in 0..8u64 {
        let (bad, what) = gfab::netlist::mutate::inject_random_bug(&montgomery, seed);
        let truly_equal =
            gfab::netlist::sim::exhaustive_check(&bad, &ctx, |w| ctx.mul(&w[0], &w[1])).is_ok();
        let alg = check_equivalence(&spec, &bad, &ctx, &ExtractOptions::default()).unwrap();
        assert_eq!(
            alg.verdict.is_equivalent(),
            truly_equal,
            "algebraic vs simulation, seed {seed} ({what})"
        );
        let sat = check_equivalence_sat(&spec, &bad, u64::MAX);
        match (sat.verdict, truly_equal) {
            (SatVerdict::Equivalent, true) => {}
            (SatVerdict::Counterexample(_), false) => {}
            (v, t) => panic!("SAT vs simulation disagree, seed {seed} ({what}): {v:?} vs {t}"),
        }
        let sr = spec_ring(&bad, &ctx);
        let f = multiplier_spec(&sr, &ctx);
        assert_eq!(
            verify_against_spec(&bad, &ctx, &sr, &f).unwrap().verified,
            truly_equal,
            "ideal membership vs simulation, seed {seed} ({what})"
        );
    }
}

#[test]
fn hierarchical_and_flat_agree_up_to_k16() {
    for k in [8usize, 16] {
        let ctx = field(k);
        let design = montgomery_multiplier_hier(&ctx);
        let hier =
            gfab::core::hier::extract_hierarchical(&design, &ctx, &ExtractOptions::default())
                .unwrap();
        let flat = extract_word_polynomial(&design.flatten(), &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        assert!(hier.function.matches(&flat), "k={k}");
        assert_eq!(format!("{}", hier.function.display()), "A*B", "k={k}");
    }
}

#[test]
fn extraction_at_nist_163_produces_product() {
    // The paper's Table 1 row, shrunk to a test: flattened Mastrovito at
    // the smallest NIST size abstracts to exactly Z = A·B.
    let ctx = GfContext::shared(gfab::field::nist::nist_polynomial(163).unwrap()).unwrap();
    let nl = mastrovito_multiplier(&ctx);
    let result = extract_word_polynomial(&nl, &ctx).unwrap();
    let f = result.canonical().expect("Case 1");
    assert_eq!(format!("{}", f.display()), "A*B");
    assert!(result.stats.reduction_steps as usize >= nl.num_gates());
}

#[test]
fn serial_equivalence_check_matches_parallel() {
    // threads=1 regression: the fully serial path must reach the same
    // verdicts (and the same canonical function) as the threaded one, on
    // both an equivalent pair and an injected-bug pair.
    let ctx = field(8);
    let spec = mastrovito_multiplier(&ctx);
    let montgomery = montgomery_multiplier_hier(&ctx).flatten();
    let serial = gfab::Verifier::new(&ctx).threads(1);
    let threaded = gfab::Verifier::new(&ctx).threads(4);

    let r1 = serial.check(&spec, &montgomery).unwrap();
    let r4 = threaded.check(&spec, &montgomery).unwrap();
    match (&r1.verdict, &r4.verdict) {
        (Verdict::Equivalent { function: f1 }, Verdict::Equivalent { function: f4 }) => {
            assert!(f1.matches(f4));
            assert_eq!(format!("{}", f1.display()), "A*B");
        }
        other => panic!("expected Equivalent from both paths, got {other:?}"),
    }

    let (bad, what) = gfab::netlist::mutate::inject_random_bug(&montgomery, 2);
    let r1 = serial.check(&spec, &bad).unwrap();
    let r4 = threaded.check(&spec, &bad).unwrap();
    assert_eq!(
        r1.verdict.is_equivalent(),
        r4.verdict.is_equivalent(),
        "serial and threaded verdicts diverge on injected bug ({what})"
    );
}

#[test]
fn equivalence_detects_wrong_modulus() {
    // Same k, different irreducible polynomial => different fields =>
    // different multiplier circuits; must be INEQUIVALENT.
    let p1 = gfab::field::Gf2Poly::from_exponents(&[4, 1, 0]);
    let p2 = gfab::field::Gf2Poly::from_exponents(&[4, 3, 0]);
    let ctx1 = GfContext::shared(p1).unwrap();
    let ctx2 = GfContext::shared(p2).unwrap();
    let a = mastrovito_multiplier(&ctx1);
    let b = mastrovito_multiplier(&ctx2);
    // Compare both as functions over ctx1's field (the circuits are just
    // bit-level netlists; interpretation fixes the field).
    let report = check_equivalence(&a, &b, &ctx1, &ExtractOptions::default()).unwrap();
    match report.verdict {
        Verdict::Inequivalent { counterexample, .. } => {
            assert!(counterexample.is_some());
        }
        other => panic!("multipliers over different moduli must differ: {other:?}"),
    }
}
