//! Integration tests for the trace/bench comparison tooling:
//!
//! * `gfab trace-diff` — alignment by phase path, deterministic
//!   work-unit gating across thread counts, v1-vs-v2 schema mixing,
//!   mutation-style regression detection;
//! * `gfab trace-check` — line number *and* field path on corrupted
//!   traces;
//! * `gfab bench-diff` — gating on deterministic benchmark fields only.
//!
//! The binary is spawned for real (via `CARGO_BIN_EXE_gfab`), traces are
//! produced by its own `equiv --trace-json`, and both the exit status and
//! the shape of stdout/stderr are asserted.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gfab"))
        .args(args)
        .output()
        .expect("gfab binary spawns")
}

fn code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("gfab exits normally, not by signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gfab-trace-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn fixture(arch: &str, k: usize) -> PathBuf {
    let path = temp_dir().join(format!("{arch}{k}.nl"));
    if !path.exists() {
        let out = run(&[
            "gen",
            arch,
            "--k",
            &k.to_string(),
            "-o",
            path.to_str().unwrap(),
        ]);
        assert_eq!(code(&out), 0, "gen {arch} k={k} failed: {}", stderr(&out));
    }
    path
}

/// Runs `equiv` on the k=16 Mastrovito/Montgomery pair with the given
/// thread count, writing (and returning) a JSONL trace.
fn equiv_trace(threads: usize, name: &str) -> PathBuf {
    let spec = fixture("mastrovito", 16);
    let impl_ = fixture("montgomery", 16);
    let trace = temp_dir().join(name);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--k",
        "16",
        "--threads",
        &threads.to_string(),
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "equiv failed: {}", stderr(&out));
    trace
}

#[test]
fn trace_diff_is_work_identical_across_thread_counts() {
    // The ISSUE's acceptance criterion: the same workload at --threads 1
    // and --threads 2 must show zero work-unit delta in every phase, so a
    // CI gate on work units is stable on any runner.
    let a = equiv_trace(1, "threads1.jsonl");
    let b = equiv_trace(2, "threads2.jsonl");
    let out = run(&[
        "trace-diff",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--threshold",
        "0",
    ]);
    assert_eq!(code(&out), 0, "stdout: {}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("guided-reduction"), "stdout: {text}");
    assert!(text.contains("OK"), "stdout: {text}");
    // Every work delta is zero.
    for line in text.lines().filter(|l| l.contains("check/")) {
        assert!(line.contains("+0"), "nonzero work delta: {line}");
    }
}

#[test]
fn trace_diff_self_comparison_reports_zero_deltas() {
    let a = equiv_trace(1, "self.jsonl");
    let out = run(&["trace-diff", a.to_str().unwrap(), a.to_str().unwrap()]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    // Without --threshold the diff is informational; a self-diff must not
    // show a single nonzero work delta or counter line.
    for line in text.lines().skip(1) {
        assert!(
            !line.contains("->"),
            "self-diff shows a field delta: {line}"
        );
    }
}

#[test]
fn inflated_counter_trips_the_gate_and_names_the_phase() {
    // Mutation-style test: inflate the reduction-steps counter of the
    // baseline's guided-reduction span and assert the gate fails naming
    // exactly that phase.
    let base = equiv_trace(1, "mutation-base.jsonl");
    let text = std::fs::read_to_string(&base).expect("trace readable");
    let line = text
        .lines()
        .find(|l| l.contains("guided-reduction") && l.contains("\"reduction-steps\":"))
        .expect("trace has a guided-reduction span with steps");
    let steps: u64 = {
        let tail = &line[line.find("\"reduction-steps\":").unwrap() + 18..];
        tail[..tail.find(|c: char| !c.is_ascii_digit()).unwrap()]
            .parse()
            .expect("numeric steps")
    };
    let mutated = text.replace(
        &format!("\"reduction-steps\":{steps}"),
        &format!("\"reduction-steps\":{}", steps * 2),
    );
    let cur = temp_dir().join("mutation-inflated.jsonl");
    std::fs::write(&cur, mutated).expect("write mutated trace");

    let out = run(&[
        "trace-diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--threshold",
        "10",
    ]);
    assert_eq!(code(&out), 1, "stdout: {}", stdout(&out));
    let text = stdout(&out);
    assert!(
        text.contains("REGRESSION") && text.contains("guided-reduction"),
        "stdout: {text}"
    );
    // Only the mutated phase regresses.
    assert_eq!(
        text.lines().filter(|l| l.starts_with("REGRESSION")).count(),
        1,
        "stdout: {text}"
    );
    // The same pair under a generous threshold passes.
    let out = run(&[
        "trace-diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--threshold",
        "200",
    ]);
    assert_eq!(code(&out), 0, "stdout: {}", stdout(&out));
}

/// A hand-written v1 trace (pre-gauges/histograms schema): two spans
/// shaped like an `extract` run.
const V1_TRACE: &str = concat!(
    "{\"type\":\"trace\",\"version\":1,\"spans\":2}\n",
    "{\"type\":\"span\",\"id\":1,\"parent\":null,\"phase\":\"extract\",\"label\":\"old\",",
    "\"thread\":0,\"start_us\":0,\"dur_us\":1000,\"counters\":{\"gates\":12}}\n",
    "{\"type\":\"span\",\"id\":2,\"parent\":1,\"phase\":\"guided-reduction\",\"label\":null,",
    "\"thread\":0,\"start_us\":10,\"dur_us\":900,\"counters\":{\"reduction-steps\":500}}\n",
);

#[test]
fn trace_diff_accepts_v1_baseline_against_v2_current() {
    // Old committed baselines must stay diffable after the schema bump:
    // v1 spans simply have no gauges/histograms.
    let old = temp_dir().join("v1-base.jsonl");
    std::fs::write(&old, V1_TRACE).expect("write v1 trace");
    let mut current = V1_TRACE.replace("\"version\":1", "\"version\":2");
    current = current
        .replace(
            "\"counters\":{\"gates\":12}}",
            "\"counters\":{\"gates\":12},\"gauges\":{},\"hists\":{}}",
        )
        .replace(
            "\"counters\":{\"reduction-steps\":500}}",
            "\"counters\":{\"reduction-steps\":500},\"gauges\":{\"mem-peak-bytes\":4096},\"hists\":{}}",
        )
        // The current run renamed the labelled block: alignment is by
        // phase path, so this must not split the rows.
        .replace("\"label\":\"old\"", "\"label\":\"renamed\"");
    let cur = temp_dir().join("v2-current.jsonl");
    std::fs::write(&cur, current).expect("write v2 trace");
    let out = run(&[
        "trace-diff",
        old.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--threshold",
        "0",
    ]);
    assert_eq!(
        code(&out),
        0,
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    assert!(stdout(&out).contains("OK"), "stdout: {}", stdout(&out));
}

#[test]
fn trace_check_names_line_and_field_path() {
    // Corrupt a real trace: drop one bucket from a histogram array so the
    // error must name both the JSONL line and the field path into the
    // nested histogram object.
    let good = equiv_trace(1, "check-good.jsonl");
    let text = std::fs::read_to_string(&good).expect("trace readable");
    assert!(text.contains("\"hists\":{"), "v2 traces carry hists");
    let line_no = text
        .lines()
        .position(|l| l.contains("\"buckets\":["))
        .expect("some span has a histogram")
        + 1;
    let corrupted = text.replacen("\"buckets\":[", "\"buckets\":[1,", 1);
    let bad = temp_dir().join("check-corrupt.jsonl");
    std::fs::write(&bad, corrupted).expect("write corrupted trace");
    let out = run(&["trace-check", bad.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "stdout: {}", stdout(&out));
    let err = stderr(&out);
    assert!(err.contains(&format!("line {line_no}")), "stderr: {err}");
    assert!(err.contains("buckets"), "stderr: {err}");
    // The pristine file still validates.
    let out = run(&["trace-check", good.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
}

#[test]
fn bench_diff_gates_deterministic_fields_only() {
    let base = temp_dir().join("bench-base.json");
    let cur = temp_dir().join("bench-cur.json");
    let baseline = concat!(
        "{\"table\":\"table1\",\"k\":16,\"gates\":1088,\"time_s\":0.5,",
        "\"reduction_steps\":5000,\"peak_terms\":300,\"peak_mem_bytes\":1000000,",
        "\"result\":\"Z=A*B\"}\n"
    );
    std::fs::write(&base, baseline).expect("write baseline");
    // Slower wall clock and bigger peak memory, same algorithmic effort:
    // not a regression.
    let drifted = baseline
        .replace("\"time_s\":0.5", "\"time_s\":9.9")
        .replace("\"peak_mem_bytes\":1000000", "\"peak_mem_bytes\":9999999");
    std::fs::write(&cur, drifted).expect("write current");
    let out = run(&[
        "bench-diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--threshold",
        "0",
    ]);
    assert_eq!(code(&out), 0, "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("OK"), "stdout: {}", stdout(&out));

    // More reduction steps *is* a regression, and the verdict names the
    // row and field.
    let slower = baseline.replace("\"reduction_steps\":5000", "\"reduction_steps\":6000");
    std::fs::write(&cur, slower).expect("write current");
    let out = run(&[
        "bench-diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--threshold",
        "10",
    ]);
    assert_eq!(code(&out), 1, "stdout: {}", stdout(&out));
    let text = stdout(&out);
    assert!(
        text.contains("REGRESSION") && text.contains("reduction_steps"),
        "stdout: {text}"
    );
    assert!(text.contains("table1 k=16"), "stdout: {text}");
}

#[test]
fn diff_usage_errors_exit_two() {
    let out = run(&["trace-diff", "only-one.jsonl"]);
    assert_eq!(code(&out), 2);
    let out = run(&["bench-diff", "a.json", "b.json", "--threshold", "lots"]);
    assert_eq!(code(&out), 2);
    assert!(
        stderr(&out).contains("bad threshold"),
        "stderr: {}",
        stderr(&out)
    );
}
