//! The fuzz subsystem's headline guarantee: a campaign is a pure
//! function of `(seed, config)`. Same seed ⇒ byte-identical summary and
//! corpus; the worker-thread count changes only the wall clock, never a
//! single byte of any result. The same contract is asserted through the
//! real binary, whose canonical summary line is what CI diffs.

use gfab::fuzz::{run_campaign, FuzzConfig};
use std::collections::BTreeMap;
use std::process::{Command, Output};

/// A small, fast campaign: generator-only degrees (no structurally
//  random pool member), high fault rate so the corpus is non-trivial.
fn config(seed: u64, threads: usize) -> FuzzConfig {
    FuzzConfig {
        seed,
        cases: 12,
        threads,
        k_min: 6,
        k_max: 8,
        fault_rate_pct: 75,
        ..FuzzConfig::default()
    }
}

/// The corpus as a map of file name to file bytes.
fn corpus_bytes(cfg: &FuzzConfig) -> BTreeMap<String, String> {
    run_campaign(cfg)
        .corpus_entries()
        .into_iter()
        .map(|c| (c.file_name(), c.to_json()))
        .collect()
}

#[test]
fn same_seed_same_threads_is_byte_identical() {
    let cfg = config(0xD00D, 4);
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(
        a.summary.canonical_json("p"),
        b.summary.canonical_json("p"),
        "summary must be reproducible"
    );
    let corpus_a: Vec<String> = a.corpus_entries().iter().map(|c| c.to_json()).collect();
    let corpus_b: Vec<String> = b.corpus_entries().iter().map(|c| c.to_json()).collect();
    assert_eq!(corpus_a, corpus_b, "corpus must be reproducible");
    assert!(
        !corpus_a.is_empty(),
        "campaign at 75% fault rate should catch something"
    );
}

#[test]
fn thread_count_never_changes_results() {
    let base = config(0xBEEF, 1);
    let summary1 = run_campaign(&base).summary.canonical_json("p");
    let corpus1 = corpus_bytes(&base);
    for threads in [2, 8] {
        let cfg = config(0xBEEF, threads);
        assert_eq!(
            run_campaign(&cfg).summary.canonical_json("p"),
            summary1,
            "summary must not depend on --threads {threads}"
        );
        assert_eq!(
            corpus_bytes(&cfg),
            corpus1,
            "failing specimen set must not depend on --threads {threads}"
        );
    }
}

#[test]
fn different_seeds_draw_different_campaigns() {
    let a = run_campaign(&config(1, 4));
    let b = run_campaign(&config(2, 4));
    assert_ne!(
        a.summary.canonical_json("p"),
        b.summary.canonical_json("p"),
        "distinct seeds should explore distinct specimens"
    );
}

fn run_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gfab"))
        .args(args)
        .output()
        .expect("gfab binary spawns")
}

#[test]
fn binary_summary_is_identical_across_thread_counts() {
    let args = |threads: &'static str| {
        vec![
            "fuzz",
            "--seed",
            "77",
            "--cases",
            "8",
            "--k-min",
            "6",
            "--k-max",
            "7",
            "--fault-rate",
            "75",
            "--threads",
            threads,
        ]
    };
    let one = run_bin(&args("1"));
    let eight = run_bin(&args("8"));
    assert_eq!(one.status.code(), eight.status.code());
    assert_eq!(
        String::from_utf8_lossy(&one.stdout),
        String::from_utf8_lossy(&eight.stdout),
        "stdout summary line must be byte-identical at any thread count"
    );
    let line = String::from_utf8_lossy(&one.stdout);
    assert!(line.contains("\"type\":\"gfab-fuzz-summary\""));
    assert!(line.contains("\"producer\":\"gfab "));
}
