//! Invariants of the counterexample shrinker and the replay pipeline:
//!
//! * shrinking is monotone — the minimised pair never has more gates
//!   than the input pair, and the witness keeps distinguishing;
//! * the candidate budget is a hard ceiling — shrinking terminates
//!   within it even when set absurdly low;
//! * a corpus case written by a real `gfab fuzz` campaign replays
//!   through `gfab fuzz --replay` with the documented exit codes
//!   (0 = reproduced, 2 = malformed input).

use gfab::circuits::mastrovito_multiplier;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::fuzz::shrink::{shrink_pair, ShrinkConfig};
use gfab::netlist::mutate::inject_random_bug;
use gfab::netlist::sim::simulate_bits;
use gfab::netlist::Netlist;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

fn ctx_for(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

fn distinguishes(spec: &Netlist, impl_: &Netlist, bits: &[bool]) -> bool {
    let sv = simulate_bits(spec, bits);
    let iv = simulate_bits(impl_, bits);
    spec.output_word()
        .bits
        .iter()
        .zip(&impl_.output_word().bits)
        .any(|(s, i)| sv[s.index()] != iv[i.index()])
}

/// A faulted pair plus a witness found by brute force.
fn bugged_pair(k: usize, seed: u64) -> Option<(Netlist, Netlist, Vec<bool>)> {
    let ctx = ctx_for(k);
    let spec = mastrovito_multiplier(&ctx);
    let (bad, _) = inject_random_bug(&spec, seed);
    let n = spec.input_bits().len();
    (0..1u32 << n)
        .map(|p| (0..n).map(|i| (p >> i) & 1 == 1).collect::<Vec<bool>>())
        .find(|bits| distinguishes(&spec, &bad, bits))
        .map(|w| (spec, bad, w))
}

#[test]
fn shrinking_is_monotone_and_keeps_the_witness() {
    let mut checked = 0;
    for seed in 0..6u64 {
        let Some((spec, bad, witness)) = bugged_pair(5, seed) else {
            continue; // benign mutation
        };
        let before = spec.num_gates() + bad.num_gates();
        let r = shrink_pair(&spec, &bad, &witness, &ShrinkConfig::default());
        assert!(
            r.total_gates() <= before,
            "seed {seed}: shrink grew the pair ({} -> {})",
            before,
            r.total_gates()
        );
        assert!(
            distinguishes(&r.spec, &r.impl_, &r.witness),
            "seed {seed}: projected witness lost the disagreement"
        );
        assert!(r.accepted <= r.candidates);
        checked += 1;
    }
    assert!(
        checked >= 3,
        "too few observable mutations to be meaningful"
    );
}

#[test]
fn candidate_budget_is_a_hard_ceiling() {
    let (spec, bad, witness) = bugged_pair(5, 1).or_else(|| bugged_pair(5, 2)).unwrap();
    for budget in [1, 7, 40] {
        let cfg = ShrinkConfig {
            max_candidates: budget,
        };
        let r = shrink_pair(&spec, &bad, &witness, &cfg);
        assert!(
            r.candidates <= budget,
            "budget {budget}: evaluated {} candidates",
            r.candidates
        );
        // Even a starved shrink must return a valid reproducing pair.
        assert!(distinguishes(&r.spec, &r.impl_, &r.witness));
    }
}

fn run_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gfab"))
        .args(args)
        .output()
        .expect("gfab binary spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exits normally")
}

#[test]
fn corpus_cases_replay_with_documented_exit_codes() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("gfab-shrink-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = run_bin(&[
        "fuzz",
        "--seed",
        "1234",
        "--cases",
        "10",
        "--k-min",
        "6",
        "--k-max",
        "7",
        "--fault-rate",
        "100",
        "--threads",
        "2",
        "--corpus",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(
        code(&out),
        0,
        "campaign: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus dir written")
        .map(|e| e.unwrap().path())
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "100% fault rate produced no corpus");

    // Every persisted case reproduces (exit 0).
    for case in &cases {
        let replay = run_bin(&["fuzz", "--replay", case.to_str().unwrap()]);
        assert_eq!(
            code(&replay),
            0,
            "{}: {}{}",
            case.display(),
            String::from_utf8_lossy(&replay.stdout),
            String::from_utf8_lossy(&replay.stderr)
        );
        assert!(String::from_utf8_lossy(&replay.stdout).contains("REPRODUCED"));
    }

    // Malformed input is a usage error (exit 2).
    let junk = dir.join("junk.json");
    std::fs::write(&junk, "{\"type\": \"gfab-fuzz-case\"").unwrap();
    let bad = run_bin(&["fuzz", "--replay", junk.to_str().unwrap()]);
    assert_eq!(code(&bad), 2);
    let missing = run_bin(&["fuzz", "--replay", "/nonexistent/case.json"]);
    assert_eq!(code(&missing), 2);

    let _ = std::fs::remove_dir_all(&dir);
}
