//! Acceptance tests of the typed fault model: every fault kind, injected
//! into a known-correct k = 8 Mastrovito multiplier, must be *caught* by
//! the differential oracle — demonstrated inequivalent with no
//! cross-engine findings (in particular no engine may claim equivalence
//! on the faulted pair, i.e. no escapes) — and the shrunk specimen must
//! still reproduce the original disagreement on its recorded witness.

use gfab::circuits::mastrovito_multiplier;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::{GfContext, Rng};
use gfab::fuzz::fault::{alternate_modulus, inject_structural};
use gfab::fuzz::oracle::{run_oracle, word_must_decide, OracleConfig};
use gfab::fuzz::shrink::{shrink_pair, ShrinkConfig};
use gfab::fuzz::{FaultKind, ALL_FAULTS};
use gfab::netlist::sim::simulate_bits;
use gfab::netlist::Netlist;
use std::sync::Arc;

const K: usize = 8;

fn ctx8() -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(K).unwrap()).unwrap()
}

fn distinguishes(spec: &Netlist, impl_: &Netlist, bits: &[bool]) -> bool {
    let sv = simulate_bits(spec, bits);
    let iv = simulate_bits(impl_, bits);
    spec.output_word()
        .bits
        .iter()
        .zip(&impl_.output_word().bits)
        .any(|(s, i)| sv[s.index()] != iv[i.index()])
}

/// Builds a faulted impl of the given kind that actually changes the
/// function (some random injection sites are benign; we scan seeds until
/// the fault is observable, which the oracle itself confirms).
fn faulted_impl(spec: &Netlist, kind: FaultKind) -> Netlist {
    if kind == FaultKind::WrongModulus {
        let alt = alternate_modulus(K).expect("k=8 has an alternate irreducible");
        let alt_ctx = GfContext::shared(alt).unwrap();
        return mastrovito_multiplier(&alt_ctx);
    }
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xFA17 ^ seed);
        if let Some((nl, fault)) = inject_structural(spec, kind, &mut rng) {
            assert_eq!(fault.kind, kind);
            // Keep only observable faults; benign sites don't exercise
            // the catch path.
            let differs = (0..1u32 << 16).any(|p| {
                let bits: Vec<bool> = (0..16).map(|i| (p >> i) & 1 == 1).collect();
                distinguishes(spec, &nl, &bits)
            });
            if differs {
                return nl;
            }
        }
    }
    panic!("no observable {kind:?} fault found in 64 seeds");
}

#[test]
fn every_fault_kind_is_caught_with_no_escapes() {
    let ctx = ctx8();
    let spec = mastrovito_multiplier(&ctx);
    // The campaign's default deterministic work cap, so a debug-build run
    // of this suite stays quick even when a fault sends the Gröbner
    // engine into its worst case.
    let cfg = OracleConfig {
        word_work_cap: Some(20_000),
        ..OracleConfig::default()
    };
    for &kind in &ALL_FAULTS {
        let bad = faulted_impl(&spec, kind);
        let expect = word_must_decide(true, true, K, cfg.word_work_cap);
        let out = run_oracle(&spec, &bad, &ctx, expect, &cfg);
        assert!(
            out.truth_differs,
            "{kind:?}: oracle failed to catch an observable fault"
        );
        assert!(
            out.findings.is_empty(),
            "{kind:?}: unexpected findings (escape?): {:?}",
            out.findings
        );
        let w = out
            .witness
            .as_ref()
            .unwrap_or_else(|| panic!("{kind:?}: caught without a witness"));
        assert!(distinguishes(&spec, &bad, w), "{kind:?}: bogus witness");
    }
}

#[test]
fn shrunk_specimens_still_reproduce_the_disagreement() {
    let ctx = ctx8();
    let spec = mastrovito_multiplier(&ctx);
    let cfg = OracleConfig {
        word_work_cap: Some(20_000),
        ..OracleConfig::default()
    };
    for &kind in &ALL_FAULTS {
        let bad = faulted_impl(&spec, kind);
        let out = run_oracle(&spec, &bad, &ctx, false, &cfg);
        let witness = out.witness.expect("caught fault has a witness");
        let shrunk = shrink_pair(&spec, &bad, &witness, &ShrinkConfig::default());
        // The shrinker's contract: the projected witness still
        // distinguishes the minimised pair...
        assert!(
            distinguishes(&shrunk.spec, &shrunk.impl_, &shrunk.witness),
            "{kind:?}: shrunk witness no longer distinguishes"
        );
        // ...and the oracle reaches the same verdict on the minimised
        // specimen as on the original: inequivalent, no findings.
        let re = run_oracle(
            &shrunk.spec,
            &shrunk.impl_,
            &ctx,
            false,
            &OracleConfig::default(),
        );
        assert!(
            re.truth_differs,
            "{kind:?}: shrunk pair lost the disagreement"
        );
        assert!(
            re.findings.is_empty(),
            "{kind:?}: shrinking introduced findings: {:?}",
            re.findings
        );
        assert!(
            shrunk.total_gates() <= spec.num_gates() + bad.num_gates(),
            "{kind:?}: shrinking grew the pair"
        );
    }
}
