//! Integration tests for per-phase memory accounting.
//!
//! The library crate forbids `unsafe`, so — exactly like the `gfab`
//! binary — this test crate installs its own thin `GlobalAlloc` wrapper
//! that forwards allocation sizes to `gfab::telemetry::mem`. The tests
//! then drive the [`Verifier`] session API and assert that:
//!
//! * `mem_stats(true)` attributes a nonzero live-bytes peak to the
//!   phases that do real algebra, and the gauges survive the JSONL
//!   round trip;
//! * runs without `mem_stats` record no memory gauges at all (the
//!   accounting is opt-in, not ambient).

use gfab::circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::telemetry::{mem, Gauge, Trace};
use gfab::Verifier;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::Arc;

struct TestAlloc;

// SAFETY: delegates verbatim to `System`; the hooks only touch atomics
// and plain thread-locals, so they cannot re-enter the allocator.
unsafe impl GlobalAlloc for TestAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            mem::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        mem::on_dealloc(layout.size());
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: TestAlloc = TestAlloc;

fn ctx() -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(16).unwrap()).unwrap()
}

/// The maximum mem-peak-bytes gauge observed on any span of `phase_slug`
/// spans (`None` when no such span carries the gauge).
fn peak_of(trace: &Trace, phase_slug: &str) -> Option<u64> {
    trace
        .spans()
        .iter()
        .filter(|s| s.phase.slug() == phase_slug)
        .flat_map(|s| &s.gauges)
        .filter(|(g, _)| *g == Gauge::MemPeakBytes)
        .map(|(_, v)| *v)
        .max()
}

#[test]
fn mem_stats_attributes_peak_bytes_to_phases() {
    let ctx = ctx();
    let v = Verifier::new(&ctx).trace(true).mem_stats(true).threads(1);
    let report = v.extract(&mastrovito_multiplier(&ctx)).unwrap();
    let trace = report.trace.expect("tracing on");
    // The phases doing real algebra must show a nonzero live-bytes peak.
    let reduce = peak_of(&trace, "guided-reduction").expect("reduction span has mem gauges");
    assert!(reduce > 0, "guided reduction allocated nothing?");
    let model = peak_of(&trace, "model-build").expect("model span has mem gauges");
    assert!(model > 0);
    // Allocation counts ride along.
    assert!(trace.spans().iter().any(|s| s
        .gauges
        .iter()
        .any(|(g, v)| *g == Gauge::MemAllocs && *v > 0)));
    // The stats table surfaces the peak column.
    let table = trace.render_table();
    assert!(table.contains("peak mem"), "table: {table}");
    // And the gauges survive the JSONL round trip.
    let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("round trip");
    assert_eq!(peak_of(&parsed, "guided-reduction"), Some(reduce));
}

#[test]
fn without_mem_stats_no_gauges_are_recorded() {
    let ctx = ctx();
    let v = Verifier::new(&ctx).trace(true).threads(1);
    let report = v.check(
        &mastrovito_multiplier(&ctx),
        &montgomery_multiplier_hier(&ctx),
    );
    let trace = report.unwrap().trace.expect("tracing on");
    assert!(
        trace.spans().iter().all(|s| s.gauges.is_empty()),
        "memory gauges recorded without mem_stats"
    );
    assert!(
        !trace.render_table().contains("peak mem"),
        "peak column without mem_stats"
    );
}

#[test]
fn tracking_is_scoped_to_the_query() {
    // The Verifier's RAII guard must switch accounting off again: after a
    // mem_stats query returns, allocations are no longer counted.
    let ctx = ctx();
    let v = Verifier::new(&ctx).trace(true).mem_stats(true).threads(1);
    let _ = v.extract(&mastrovito_multiplier(&ctx)).unwrap();
    assert!(
        !mem::is_tracking(),
        "allocator tracking left on after the query"
    );
}
