//! Property-based tests of the field substrate: `F_2[x]` ring axioms and
//! `F_{2^k}` field axioms on random elements.

use gfab::field::nist::{irreducible_polynomial, nist_polynomial};
use gfab::field::{Gf2Poly, GfContext};
use proptest::prelude::*;

fn arb_poly(max_limbs: usize) -> impl Strategy<Value = Gf2Poly> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(Gf2Poly::from_limbs)
}

proptest! {
    #[test]
    fn gf2poly_add_is_commutative_and_self_inverse(a in arb_poly(4), b in arb_poly(4)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert!(a.add(&a).is_zero());
        prop_assert_eq!(a.add(&Gf2Poly::zero()), a);
    }

    #[test]
    fn gf2poly_mul_is_commutative_and_associative(
        a in arb_poly(2), b in arb_poly(2), c in arb_poly(2)
    ) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn gf2poly_mul_distributes_over_add(a in arb_poly(3), b in arb_poly(3), c in arb_poly(3)) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn gf2poly_divrem_invariant(a in arb_poly(4), b in arb_poly(2)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        if let Some(rd) = r.degree() {
            prop_assert!(rd < b.degree().unwrap());
        }
    }

    #[test]
    fn gf2poly_square_matches_mul(a in arb_poly(4)) {
        prop_assert_eq!(a.square(), a.mul(&a));
    }

    #[test]
    fn gf2poly_gcd_divides_both(a in arb_poly(2), b in arb_poly(2)) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn gf2poly_ext_gcd_bezout(a in arb_poly(2), b in arb_poly(2)) {
        let (g, s, t) = a.ext_gcd(&b);
        prop_assert_eq!(s.mul(&a).add(&t.mul(&b)), g);
    }
}

// Field axioms over F_2^16 on random elements.
proptest! {
    #[test]
    fn f16_field_axioms(abits in any::<u64>(), bbits in any::<u64>(), cbits in any::<u64>()) {
        let ctx = GfContext::new(irreducible_polynomial(16).unwrap()).unwrap();
        let a = ctx.from_u64(abits & 0xFFFF);
        let b = ctx.from_u64(bbits & 0xFFFF);
        let c = ctx.from_u64(cbits & 0xFFFF);
        // Associativity & commutativity.
        prop_assert_eq!(ctx.mul(&a, &b), ctx.mul(&b, &a));
        prop_assert_eq!(ctx.mul(&ctx.mul(&a, &b), &c), ctx.mul(&a, &ctx.mul(&b, &c)));
        // Distributivity.
        prop_assert_eq!(
            ctx.mul(&a, &ctx.add(&b, &c)),
            ctx.add(&ctx.mul(&a, &b), &ctx.mul(&a, &c))
        );
        // Identity and inverse.
        prop_assert_eq!(ctx.mul(&a, &ctx.one()), a.clone());
        if !a.is_zero() {
            let ai = ctx.inv(&a).unwrap();
            prop_assert_eq!(ctx.mul(&a, &ai), ctx.one());
        }
        // Squaring is the Frobenius endomorphism: (a+b)² = a² + b².
        prop_assert_eq!(
            ctx.square(&ctx.add(&a, &b)),
            ctx.add(&ctx.square(&a), &ctx.square(&b))
        );
    }

    #[test]
    fn nist163_mul_inverse_roundtrip(bits in prop::collection::vec(any::<u64>(), 3)) {
        let ctx = GfContext::new(nist_polynomial(163).unwrap()).unwrap();
        let a = ctx.element(Gf2Poly::from_limbs(bits));
        prop_assume!(!a.is_zero());
        let ai = ctx.inv(&a).unwrap();
        prop_assert_eq!(ctx.mul(&a, &ai), ctx.one());
        // Fermat: a^(2^163) = a, via multi-limb exponent 2^163.
        let mut e = vec![0u64; 3];
        e[2] = 1 << (163 - 128);
        prop_assert_eq!(ctx.pow_limbs(&a, &e), a);
    }

    #[test]
    fn montgomery_identity_holds(abits in any::<u64>(), bbits in any::<u64>()) {
        // MonPro semantics: A·B·R⁻¹ scaled back by R² twice equals A·B.
        let ctx = GfContext::new(irreducible_polynomial(12).unwrap()).unwrap();
        let a = ctx.from_u64(abits & 0xFFF);
        let b = ctx.from_u64(bbits & 0xFFF);
        let r = ctx.montgomery_r();
        let rinv = ctx.montgomery_r_inv();
        let monpro = |x: &gfab::field::Gf, y: &gfab::field::Gf| {
            ctx.mul(&ctx.mul(x, y), &rinv)
        };
        let ar = monpro(&a, &ctx.montgomery_r2());
        let br = monpro(&b, &ctx.montgomery_r2());
        prop_assert_eq!(ar, ctx.mul(&a, &r));
        let abr = monpro(&ctx.mul(&a, &r), &ctx.mul(&b, &r));
        let g = monpro(&abr, &ctx.one());
        prop_assert_eq!(g, ctx.mul(&a, &b));
        let _ = br;
    }
}
