//! Randomized property tests of the field substrate: `F_2[x]` ring axioms
//! and `F_{2^k}` field axioms on random elements. Deterministic seeds
//! replace an earlier proptest harness so the suite runs without external
//! dependencies.

use gfab::field::nist::{irreducible_polynomial, nist_polynomial};
use gfab::field::{Gf2Poly, GfContext, Rng};

/// A random polynomial with up to `max_limbs` random limbs.
fn random_poly(rng: &mut Rng, max_limbs: usize) -> Gf2Poly {
    let n = rng.random_range(0..max_limbs + 1);
    Gf2Poly::from_limbs((0..n).map(|_| rng.next_u64()).collect())
}

#[test]
fn gf2poly_add_is_commutative_and_self_inverse() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = random_poly(&mut rng, 4);
        let b = random_poly(&mut rng, 4);
        assert_eq!(a.add(&b), b.add(&a));
        assert!(a.add(&a).is_zero());
        assert_eq!(a.add(&Gf2Poly::zero()), a);
    }
}

#[test]
fn gf2poly_mul_is_commutative_and_associative() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = random_poly(&mut rng, 2);
        let b = random_poly(&mut rng, 2);
        let c = random_poly(&mut rng, 2);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }
}

#[test]
fn gf2poly_mul_distributes_over_add() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = random_poly(&mut rng, 3);
        let b = random_poly(&mut rng, 3);
        let c = random_poly(&mut rng, 3);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}

#[test]
fn gf2poly_divrem_invariant() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = random_poly(&mut rng, 4);
        let b = random_poly(&mut rng, 2);
        if b.is_zero() {
            continue;
        }
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        if let Some(rd) = r.degree() {
            assert!(rd < b.degree().unwrap());
        }
    }
}

#[test]
fn gf2poly_square_matches_mul() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = random_poly(&mut rng, 4);
        assert_eq!(a.square(), a.mul(&a));
    }
}

#[test]
fn gf2poly_gcd_divides_both() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = random_poly(&mut rng, 2);
        let b = random_poly(&mut rng, 2);
        if a.is_zero() || b.is_zero() {
            continue;
        }
        let g = a.gcd(&b);
        assert!(a.rem(&g).is_zero());
        assert!(b.rem(&g).is_zero());
    }
}

#[test]
fn gf2poly_ext_gcd_bezout() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = random_poly(&mut rng, 2);
        let b = random_poly(&mut rng, 2);
        let (g, s, t) = a.ext_gcd(&b);
        assert_eq!(s.mul(&a).add(&t.mul(&b)), g);
    }
}

// Field axioms over F_2^16 on random elements.
#[test]
fn f16_field_axioms() {
    let ctx = GfContext::new(irreducible_polynomial(16).unwrap()).unwrap();
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = ctx.from_u64(rng.next_u64() & 0xFFFF);
        let b = ctx.from_u64(rng.next_u64() & 0xFFFF);
        let c = ctx.from_u64(rng.next_u64() & 0xFFFF);
        // Associativity & commutativity.
        assert_eq!(ctx.mul(&a, &b), ctx.mul(&b, &a));
        assert_eq!(ctx.mul(&ctx.mul(&a, &b), &c), ctx.mul(&a, &ctx.mul(&b, &c)));
        // Distributivity.
        assert_eq!(
            ctx.mul(&a, &ctx.add(&b, &c)),
            ctx.add(&ctx.mul(&a, &b), &ctx.mul(&a, &c))
        );
        // Identity and inverse.
        assert_eq!(ctx.mul(&a, &ctx.one()), a.clone());
        if !a.is_zero() {
            let ai = ctx.inv(&a).unwrap();
            assert_eq!(ctx.mul(&a, &ai), ctx.one());
        }
        // Squaring is the Frobenius endomorphism: (a+b)² = a² + b².
        assert_eq!(
            ctx.square(&ctx.add(&a, &b)),
            ctx.add(&ctx.square(&a), &ctx.square(&b))
        );
    }
}

#[test]
fn nist163_mul_inverse_roundtrip() {
    let ctx = GfContext::new(nist_polynomial(163).unwrap()).unwrap();
    for seed in 0..16u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let bits: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let a = ctx.element(Gf2Poly::from_limbs(bits));
        if a.is_zero() {
            continue;
        }
        let ai = ctx.inv(&a).unwrap();
        assert_eq!(ctx.mul(&a, &ai), ctx.one());
        // Fermat: a^(2^163) = a, via multi-limb exponent 2^163.
        let mut e = vec![0u64; 3];
        e[2] = 1 << (163 - 128);
        assert_eq!(ctx.pow_limbs(&a, &e), a);
    }
}

#[test]
fn montgomery_identity_holds() {
    // MonPro semantics: A·B·R⁻¹ scaled back by R² twice equals A·B.
    let ctx = GfContext::new(irreducible_polynomial(12).unwrap()).unwrap();
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = ctx.from_u64(rng.next_u64() & 0xFFF);
        let b = ctx.from_u64(rng.next_u64() & 0xFFF);
        let r = ctx.montgomery_r();
        let rinv = ctx.montgomery_r_inv();
        let monpro = |x: &gfab::field::Gf, y: &gfab::field::Gf| ctx.mul(&ctx.mul(x, y), &rinv);
        let ar = monpro(&a, &ctx.montgomery_r2());
        let br = monpro(&b, &ctx.montgomery_r2());
        assert_eq!(ar, ctx.mul(&a, &r));
        let abr = monpro(&ctx.mul(&a, &r), &ctx.mul(&b, &r));
        let g = monpro(&abr, &ctx.one());
        assert_eq!(g, ctx.mul(&a, &b));
        let _ = br;
    }
}
