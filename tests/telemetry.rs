//! Integration tests for the telemetry layer: traces are absent (and
//! results unperturbed) when tracing is off, JSONL traces round-trip, and
//! span trees have the shape the pipeline promises (per-block child spans
//! under hierarchical extraction, SAT phases on the fallback rung).

use gfab::circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::telemetry::{Counter, Phase, Trace};
use gfab::Verifier;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

#[test]
fn disabled_telemetry_leaves_no_trace_and_identical_results() {
    let ctx = field(8);
    let spec = mastrovito_multiplier(&ctx);
    let design = montgomery_multiplier_hier(&ctx);

    // Tracing off (the default): no trace on either report.
    let v = Verifier::new(&ctx);
    let plain_extract = v.extract(&spec).unwrap();
    assert!(plain_extract.trace.is_none());
    let plain_check = v.check(&spec, &design).unwrap();
    assert!(plain_check.trace.is_none());
    assert!(plain_check.sat.is_none(), "no fallback ran");

    // Tracing on: same function, same verdict, same effort counters —
    // telemetry observes the pipeline, it must not perturb it.
    let t = Verifier::new(&ctx).trace(true);
    let traced_extract = t.extract(&spec).unwrap();
    assert!(traced_extract.trace.is_some());
    assert!(traced_extract
        .function()
        .unwrap()
        .matches(plain_extract.function().unwrap()));
    let (p, q) = (plain_extract.stats(), traced_extract.stats());
    assert_eq!(p.reduction_steps, q.reduction_steps);
    assert_eq!(p.peak_terms, q.peak_terms);
    assert_eq!(p.cancellations, q.cancellations);
    let traced_check = t.check(&spec, &design).unwrap();
    assert!(traced_check.trace.is_some());
    assert_eq!(
        plain_check.verdict.is_equivalent(),
        traced_check.verdict.is_equivalent()
    );
}

#[test]
fn equiv_trace_round_trips_through_jsonl() {
    let ctx = field(16);
    let spec = mastrovito_multiplier(&ctx);
    let impl_ = montgomery_multiplier_hier(&ctx).flatten();
    let report = Verifier::new(&ctx)
        .trace(true)
        .check(&spec, &impl_)
        .unwrap();
    assert!(report.verdict.is_equivalent());
    let trace = report.trace.expect("tracing was enabled");

    // The k=16 flat flow must cover the documented phases: the query
    // root, the simulation pre-check, both extraction sides, and the
    // model/reduction work underneath them.
    for phase in [
        Phase::Check,
        Phase::Simulation,
        Phase::Extract,
        Phase::ModelBuild,
        Phase::GuidedReduction,
    ] {
        assert!(
            trace.phase_spans(phase).next().is_some(),
            "k=16 equiv trace must contain a {phase:?} span"
        );
    }
    assert!(trace.counter_total(Counter::Gates) > 0);
    assert!(trace.counter_total(Counter::ReductionSteps) > 0);
    assert_eq!(trace.counter_total(Counter::SimVectors), 64);

    // Round-trip: every span, parent link, label, thread id and counter
    // survives the JSONL encoding exactly; timestamps survive at the
    // schema's microsecond granularity.
    let text = trace.to_jsonl();
    let back = Trace::from_jsonl(&text).expect("emitted traces parse");
    assert_eq!(back.spans().len(), trace.spans().len());
    for (b, t) in back.spans().iter().zip(trace.spans()) {
        assert_eq!(b.id, t.id);
        assert_eq!(b.parent, t.parent);
        assert_eq!(b.phase, t.phase);
        assert_eq!(b.label, t.label);
        assert_eq!(b.thread, t.thread);
        assert_eq!(b.counters, t.counters);
        assert_eq!(b.start.as_micros(), t.start.as_micros());
        assert_eq!(b.duration.as_micros(), t.duration.as_micros());
    }
}

#[test]
fn hier_extraction_trace_has_one_block_span_per_block() {
    let ctx = field(8);
    let design = montgomery_multiplier_hier(&ctx);
    let report = Verifier::new(&ctx).trace(true).extract(&design).unwrap();
    let trace = report.trace.expect("tracing was enabled");

    // One root: the query's Extract span, labelled with the design name.
    let roots: Vec<_> = trace.roots().collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].phase, Phase::Extract);
    assert_eq!(roots[0].label.as_deref(), Some(design.name.as_str()));

    // One labelled Block child per block of the design, each nesting its
    // own model/reduction spans, plus the composition span.
    let blocks: Vec<_> = trace
        .children(roots[0].id)
        .filter(|s| s.phase == Phase::Block)
        .collect();
    assert_eq!(blocks.len(), design.blocks.len());
    let mut labels: Vec<_> = blocks
        .iter()
        .map(|b| b.label.clone().expect("block spans are labelled"))
        .collect();
    labels.sort();
    let mut expected: Vec<_> = design.blocks.iter().map(|b| b.name.clone()).collect();
    expected.sort();
    assert_eq!(labels, expected);
    for b in &blocks {
        assert!(
            trace.children(b.id).any(|s| s.phase == Phase::ModelBuild),
            "block {:?} must nest a model-construction span",
            b.label
        );
        assert!(
            trace
                .children(b.id)
                .any(|s| s.phase == Phase::GuidedReduction),
            "block {:?} must nest a guided-reduction span",
            b.label
        );
    }
    assert!(
        trace
            .children(roots[0].id)
            .any(|s| s.phase == Phase::Compose),
        "composition must be recorded under the query root"
    );
}

#[test]
fn sat_fallback_records_solver_phases_and_stats() {
    // A work cap of 1 trips the word-level pipeline immediately; the SAT
    // fallback decides, and the trace must show the solver phases.
    let ctx = field(8);
    let spec = mastrovito_multiplier(&ctx);
    let impl_ = montgomery_multiplier_hier(&ctx).flatten();
    let report = Verifier::new(&ctx)
        .trace(true)
        .work_cap(1)
        .check(&spec, &impl_)
        .unwrap();
    assert!(report.verdict.is_equivalent(), "SAT proves the miter UNSAT");
    let sat = report.sat.expect("the fallback rung ran");
    assert!(sat.cnf_vars > 0 && sat.cnf_clauses > 0);
    assert!(sat.decisions > 0 || sat.conflicts == 0);

    let trace = report.trace.expect("tracing was enabled");
    for phase in [
        Phase::MiterBuild,
        Phase::TseitinEncode,
        Phase::SolverBuild,
        Phase::SatSolve,
    ] {
        assert!(
            trace.phase_spans(phase).next().is_some(),
            "fallback trace must contain a {phase:?} span"
        );
    }
    assert_eq!(trace.counter_total(Counter::CnfVars), sat.cnf_vars as u64);
    assert_eq!(trace.counter_total(Counter::Conflicts), sat.conflicts);
}
