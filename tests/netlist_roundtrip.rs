//! Netlist-level integration: text-format roundtrips, optimization
//! equivalence, and miter behaviour on the real benchmark generators.

use gfab::circuits::{mastrovito_multiplier, monpro, MonproOperand};
use gfab::core::{extract_word_polynomial, ExtractOptions};
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::netlist::opt::optimize;
use gfab::netlist::random::{random_circuit, RandomCircuitSpec};
use gfab::netlist::sim::random_equivalence_check;
use gfab::netlist::{format, Netlist};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

fn assert_same_function(a: &Netlist, b: &Netlist, ctx: &Arc<GfContext>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    random_equivalence_check(a, b, ctx, 64, &mut rng)
        .unwrap_or_else(|w| panic!("functions differ at {w:?}"));
}

#[test]
fn format_roundtrip_mastrovito_k8() {
    let ctx = field(8);
    let nl = mastrovito_multiplier(&ctx);
    let text = format::emit(&nl);
    let back = format::parse(&text).unwrap();
    assert_eq!(back.num_gates(), nl.num_gates());
    assert_same_function(&nl, &back, &ctx);
    // Round-trip again: stable.
    assert_eq!(format::emit(&back), text);
}

#[test]
fn format_roundtrip_preserves_extraction() {
    let ctx = field(4);
    let nl = monpro(&ctx, "mm", MonproOperand::Word);
    let back = format::parse(&format::emit(&nl)).unwrap();
    let f1 = extract_word_polynomial(&nl, &ctx)
        .unwrap()
        .canonical()
        .cloned()
        .unwrap();
    let f2 = extract_word_polynomial(&back, &ctx)
        .unwrap()
        .canonical()
        .cloned()
        .unwrap();
    assert!(f1.matches(&f2));
}

#[test]
fn optimizer_preserves_monpro_constant_blocks() {
    // MonPro with a constant operand is already constant-folded by the
    // generator; running the generic optimizer on the *word* version wired
    // to constants must reach a comparable size and the same function.
    let ctx = field(8);
    let r2 = ctx.montgomery_r2();
    let direct = monpro(&ctx, "direct", MonproOperand::Const(r2.clone()));

    // Build the word version and tie B to the constant with const gates.
    let word = monpro(&ctx, "word", MonproOperand::Word);
    let mut wired = Netlist::new("wired");
    let a = wired.add_input_word("A", 8);
    let bbits: Vec<_> = (0..8).map(|i| wired.constant(r2.bit(i))).collect();
    let mut inputs = a.clone();
    inputs.extend(bbits);
    let outs = gfab::netlist::miter::instantiate(&mut wired, &word, &inputs, "u");
    wired.set_output_word("Z", outs);

    let (opt, stats) = optimize(&wired);
    opt.validate().unwrap();
    assert!(stats.gates_folded > 0);
    assert!(opt.num_gates() < wired.num_gates());
    assert_same_function(&opt, &direct, &ctx);
    // And extraction agrees too.
    let f1 = extract_word_polynomial(&opt, &ctx)
        .unwrap()
        .canonical()
        .cloned()
        .unwrap();
    let f2 = extract_word_polynomial(&direct, &ctx)
        .unwrap()
        .canonical()
        .cloned()
        .unwrap();
    assert!(f1.matches(&f2));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn roundtrip_random_circuits(seed in 0u64..10_000) {
        let spec = RandomCircuitSpec {
            num_input_words: 2,
            width: 3,
            num_gates: 30,
            seed,
        };
        let nl = random_circuit(&spec);
        let back = format::parse(&format::emit(&nl)).unwrap();
        let ctx = field(3);
        assert_same_function(&nl, &back, &ctx);
    }

    #[test]
    fn optimizer_preserves_random_circuits(seed in 0u64..10_000) {
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 3,
            num_gates: 40,
            seed,
        });
        let (opt, _) = optimize(&nl);
        opt.validate().unwrap();
        let ctx = field(3);
        assert_same_function(&nl, &opt, &ctx);
    }

    #[test]
    fn extraction_survives_optimization(seed in 0u64..2_000) {
        // Canonical polynomials before and after optimization must match
        // (they are functions of the circuit behaviour only).
        let ctx = field(2);
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 2,
            num_gates: 18,
            seed,
        });
        let (opt, _) = optimize(&nl);
        let f1 = gfab::core::extract_word_polynomial_with(&nl, &ctx, &ExtractOptions::default())
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        let f2 = gfab::core::extract_word_polynomial_with(&opt, &ctx, &ExtractOptions::default())
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        prop_assert!(f1.matches(&f2));
    }
}
