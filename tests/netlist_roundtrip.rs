//! Netlist-level integration: text-format roundtrips, optimization
//! equivalence, and miter behaviour on the real benchmark generators.
//! Randomized cases use deterministic seeds (an earlier proptest harness
//! was replaced so the suite runs without external dependencies).

use gfab::circuits::{mastrovito_multiplier, monpro, MonproOperand};
use gfab::field::nist::irreducible_polynomial;
use gfab::field::{GfContext, Rng};
use gfab::netlist::opt::optimize;
use gfab::netlist::random::{random_circuit, RandomCircuitSpec};
use gfab::netlist::sim::random_equivalence_check;
use gfab::netlist::{format, Netlist};
use gfab::Verifier;
use std::sync::Arc;

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

fn assert_same_function(a: &Netlist, b: &Netlist, ctx: &Arc<GfContext>) {
    let mut rng = Rng::seed_from_u64(1234);
    random_equivalence_check(a, b, ctx, 64, &mut rng)
        .unwrap_or_else(|w| panic!("functions differ at {w:?}"));
}

fn canonical(nl: &Netlist, ctx: &Arc<GfContext>) -> gfab::core::WordFunction {
    Verifier::new(ctx)
        .extract(nl)
        .unwrap()
        .function()
        .cloned()
        .unwrap()
}

#[test]
fn format_roundtrip_mastrovito_k8() {
    let ctx = field(8);
    let nl = mastrovito_multiplier(&ctx);
    let text = format::emit(&nl);
    let back = format::parse(&text).unwrap();
    assert_eq!(back.num_gates(), nl.num_gates());
    assert_same_function(&nl, &back, &ctx);
    // Round-trip again: stable.
    assert_eq!(format::emit(&back), text);
}

#[test]
fn format_roundtrip_preserves_extraction() {
    let ctx = field(4);
    let nl = monpro(&ctx, "mm", MonproOperand::Word);
    let back = format::parse(&format::emit(&nl)).unwrap();
    assert!(canonical(&nl, &ctx).matches(&canonical(&back, &ctx)));
}

#[test]
fn optimizer_preserves_monpro_constant_blocks() {
    // MonPro with a constant operand is already constant-folded by the
    // generator; running the generic optimizer on the *word* version wired
    // to constants must reach a comparable size and the same function.
    let ctx = field(8);
    let r2 = ctx.montgomery_r2();
    let direct = monpro(&ctx, "direct", MonproOperand::Const(r2.clone()));

    // Build the word version and tie B to the constant with const gates.
    let word = monpro(&ctx, "word", MonproOperand::Word);
    let mut wired = Netlist::new("wired");
    let a = wired.add_input_word("A", 8);
    let bbits: Vec<_> = (0..8).map(|i| wired.constant(r2.bit(i))).collect();
    let mut inputs = a.clone();
    inputs.extend(bbits);
    let outs = gfab::netlist::miter::instantiate(&mut wired, &word, &inputs, "u");
    wired.set_output_word("Z", outs);

    let (opt, stats) = optimize(&wired);
    opt.validate().unwrap();
    assert!(stats.gates_folded > 0);
    assert!(opt.num_gates() < wired.num_gates());
    assert_same_function(&opt, &direct, &ctx);
    // And extraction agrees too.
    assert!(canonical(&opt, &ctx).matches(&canonical(&direct, &ctx)));
}

#[test]
fn roundtrip_random_circuits() {
    let ctx = field(3);
    for seed in 0..20u64 {
        let spec = RandomCircuitSpec {
            num_input_words: 2,
            width: 3,
            num_gates: 30,
            seed: seed * 499,
        };
        let nl = random_circuit(&spec);
        let back = format::parse(&format::emit(&nl)).unwrap();
        assert_same_function(&nl, &back, &ctx);
    }
}

#[test]
fn optimizer_preserves_random_circuits() {
    let ctx = field(3);
    for seed in 0..20u64 {
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 3,
            num_gates: 40,
            seed: seed * 499,
        });
        let (opt, _) = optimize(&nl);
        opt.validate().unwrap();
        assert_same_function(&nl, &opt, &ctx);
    }
}

#[test]
fn extraction_survives_optimization() {
    // Canonical polynomials before and after optimization must match
    // (they are functions of the circuit behaviour only).
    let ctx = field(2);
    for seed in 0..20u64 {
        let nl = random_circuit(&RandomCircuitSpec {
            num_input_words: 2,
            width: 2,
            num_gates: 18,
            seed: seed * 97,
        });
        let (opt, _) = optimize(&nl);
        assert!(
            canonical(&nl, &ctx).matches(&canonical(&opt, &ctx)),
            "seed {seed}"
        );
    }
}
