//! Integration tests for the cross-run observability tools: trace
//! aggregation (`gfab trace-agg`), flamegraph export and critical-path
//! analysis (`gfab flame`), and the invariants that make them
//! trustworthy —
//!
//! * histogram merging is associative and commutative, so aggregating
//!   trace shards in any grouping or order gives identical results;
//! * aggregating shards separately is *byte-identical* to aggregating
//!   the merged whole, checked both in-process and through the binary;
//! * folded flamegraph output round-trips through its strict parser;
//! * the critical path of a hand-built concurrent span tree matches the
//!   known answer, and on a real `--threads 8` batch trace it is
//!   bounded by the wall clock below and the longest span above.

use gfab::telemetry::{
    critical_path, folded, parse_folded, Counter, GroupBy, HistData, Phase, SpanRecord, Trace,
    TraceAgg,
};
use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::Duration;

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gfab"))
        .args(args)
        .output()
        .expect("gfab binary spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("gfab exits normally")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gfab-trace-agg-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A small span tree with concurrent extraction shards, as one
/// equivalence check produces: root on thread 0, two overlapping
/// children on worker threads, a serial simulation tail.
fn sample_trace(salt: u64) -> Trace {
    let mk = |id, parent, phase, thread, start_us: u64, dur_us: u64| SpanRecord {
        id,
        parent,
        phase,
        label: None,
        thread,
        start: Duration::from_micros(start_us),
        duration: Duration::from_micros(dur_us),
        counters: Vec::new(),
        gauges: Vec::new(),
        hists: Vec::new(),
    };
    let mut root = mk(1, None, Phase::Check, 0, 0, 1000 + salt);
    root.label = Some(format!("mastrovito_{}", 8 + salt));
    let mut ea = mk(2, Some(1), Phase::Extract, 1, 0, 600);
    ea.counters = vec![(Counter::ReductionSteps, 40 + salt)];
    let mut eb = mk(3, Some(1), Phase::Extract, 2, 0, 400 + salt);
    eb.counters = vec![(Counter::ReductionSteps, 25)];
    let mut sim = mk(4, Some(1), Phase::Simulation, 1, 650, 200);
    sim.counters = vec![(Counter::SimVectors, 64)];
    Trace::from_spans(vec![root, ea, eb, sim])
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    let hist = |values: &[u64]| {
        let mut h = HistData::new();
        for &v in values {
            h.record(v);
        }
        h
    };
    let (a, b, c) = (
        hist(&[1, 7, 130, 5000]),
        hist(&[2, 2, 90000]),
        hist(&[1_000_000]),
    );
    // (a ∪ b) ∪ c == a ∪ (b ∪ c)
    let mut left = a;
    left.merge(&b);
    left.merge(&c);
    let mut bc = b;
    bc.merge(&c);
    let mut right = a;
    right.merge(&bc);
    assert_eq!(left, right, "merge must be associative");
    // a ∪ b == b ∪ a
    let mut ab = a;
    ab.merge(&b);
    let mut ba = b;
    ba.merge(&a);
    assert_eq!(ab, ba, "merge must be commutative");
    // Merged percentiles equal whole-population percentiles.
    let whole = hist(&[1, 7, 130, 5000, 2, 2, 90000]);
    for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
        assert_eq!(ab.percentile(p), whole.percentile(p), "p{p}");
    }
}

#[test]
fn aggregating_shards_equals_aggregating_the_whole() {
    let (s1, s2) = (sample_trace(0), sample_trace(3));
    // The "whole" is both shards in one trace, second shifted in time
    // (shifts must not matter: aggregation sees only durations).
    let whole = Trace::merged([(&s1, Duration::ZERO), (&s2, Duration::from_micros(1500))]);
    for group_by in [GroupBy::Phase, GroupBy::K, GroupBy::Arch] {
        let mut sharded = TraceAgg::new(group_by);
        sharded.add_trace(&s1);
        sharded.add_trace(&s2);
        let mut unsharded = TraceAgg::new(group_by);
        unsharded.add_trace(&whole);
        assert_eq!(
            sharded.to_jsonl(),
            unsharded.to_jsonl(),
            "byte-identical aggregation for {group_by:?}"
        );
    }
}

#[test]
fn binary_trace_agg_is_shard_order_invariant_and_checkable() {
    let dir = temp_dir();
    let (s1, s2) = (sample_trace(0), sample_trace(3));
    let whole = Trace::merged([(&s1, Duration::ZERO), (&s2, Duration::from_micros(1500))]);
    let p1 = dir.join("shard1.jsonl");
    let p2 = dir.join("shard2.jsonl");
    let pw = dir.join("whole.jsonl");
    std::fs::write(&p1, s1.to_jsonl()).unwrap();
    std::fs::write(&p2, s2.to_jsonl()).unwrap();
    std::fs::write(&pw, whole.to_jsonl()).unwrap();

    let agg = |inputs: &[&PathBuf], out: &PathBuf| {
        let mut args = vec!["trace-agg"];
        args.extend(inputs.iter().map(|p| p.to_str().unwrap()));
        args.extend(["--json", out.to_str().unwrap()]);
        let o = run(&args);
        assert_eq!(code(&o), 0, "stderr: {}", stderr(&o));
        std::fs::read(out).unwrap()
    };
    let out_a = dir.join("agg-shards.jsonl");
    let out_b = dir.join("agg-shards-rev.jsonl");
    let out_w = dir.join("agg-whole.jsonl");
    let shards = agg(&[&p1, &p2], &out_a);
    let shards_rev = agg(&[&p2, &p1], &out_b);
    let unsharded = agg(&[&pw], &out_w);
    assert_eq!(shards, shards_rev, "shard order must not matter");
    assert_eq!(shards, unsharded, "shards vs whole must be byte-identical");

    // trace-check recognizes and validates the agg document.
    let o = run(&["trace-check", out_a.to_str().unwrap()]);
    assert_eq!(code(&o), 0, "stderr: {}", stderr(&o));
    assert!(stdout(&o).contains("valid agg"), "stdout: {}", stdout(&o));

    // A tampered work-unit total must be rejected (exit 2).
    let text = String::from_utf8(shards).unwrap();
    let tampered = text.replacen("\"work_units\":", "\"work_units\":9", 1);
    assert_ne!(text, tampered, "tamper must change the document");
    std::fs::write(&out_a, tampered).unwrap();
    let o = run(&["trace-check", out_a.to_str().unwrap()]);
    assert_eq!(code(&o), 2, "stdout: {}", stdout(&o));
}

#[test]
fn folded_stacks_round_trip_and_preserve_total_time() {
    let t = sample_trace(0);
    let text = folded(&t);
    let rows = parse_folded(&text).expect("folded output parses strictly");
    // Folded weights are exactly the spans' self times (concurrent
    // children can exceed their parent, so the parent's self time
    // saturates at zero rather than going negative).
    let total: u64 = rows.iter().map(|(_, w)| w).sum();
    let self_total: u64 = t
        .spans()
        .iter()
        .map(|s| t.self_time(s).as_micros() as u64)
        .sum();
    assert!(total > 0);
    assert_eq!(total, self_total, "folded weights are the self times");
    // Every stack's leaf frame is a known phase slug (possibly labeled).
    for (frames, _) in &rows {
        let leaf = frames.last().unwrap();
        let slug = leaf.split('[').next().unwrap();
        assert!(
            gfab::telemetry::Phase::from_slug(slug).is_some(),
            "unknown frame slug {leaf:?}"
        );
    }
}

#[test]
fn critical_path_of_known_concurrent_tree() {
    // Two concurrent 600/400µs extractions under a 1000µs root, then a
    // 200µs simulation starting at 650µs. Ignoring the root (the longest
    // single span at 1000µs), the best chain is 600µs extract → 200µs
    // sim = 800µs; with the root present the root itself wins.
    let t = sample_trace(0);
    let cp = critical_path(&t);
    assert_eq!(cp.wall_us, 1000);
    assert_eq!(cp.path_us, 1000, "the root span is itself a chain");
    assert_eq!(cp.span_ids, vec![1]);

    let children: Vec<SpanRecord> = t
        .spans()
        .iter()
        .filter(|s| s.parent.is_some())
        .map(|s| {
            let mut s = s.clone();
            s.parent = None;
            s
        })
        .collect();
    let cp = critical_path(&Trace::from_spans(children));
    assert_eq!(cp.path_us, 800, "600us extract then 200us simulation");
    assert_eq!(cp.span_ids, vec![2, 4]);
    let longest = 600;
    assert!(cp.path_us >= longest && cp.path_us <= cp.wall_us);
}

#[test]
fn ledger_accumulates_runs_and_reports_drift() {
    let dir = temp_dir();
    let nl = dir.join("sq4.nl");
    let o = run(&["gen", "squarer", "--k", "4", "-o", nl.to_str().unwrap()]);
    assert_eq!(code(&o), 0, "stderr: {}", stderr(&o));
    let ledger = dir.join("ledger.jsonl");
    let _ = std::fs::remove_file(&ledger);
    // The same command twice: two rows, one run each, same fingerprint.
    for _ in 0..2 {
        let o = run(&[
            "extract",
            nl.to_str().unwrap(),
            "--k",
            "4",
            "--ledger",
            ledger.to_str().unwrap(),
        ]);
        assert_eq!(code(&o), 0, "stderr: {}", stderr(&o));
    }
    let text = std::fs::read_to_string(&ledger).unwrap();
    assert_eq!(text.lines().count(), 2, "one row per run: {text}");
    assert!(text.contains("\"cmd\":\"extract\""), "{text}");
    assert!(text.contains("\"verdict\":\"extracted\""), "{text}");
    assert!(text.contains("\"k\":4"), "{text}");

    let o = run(&["report", ledger.to_str().unwrap()]);
    assert_eq!(code(&o), 0, "stderr: {}", stderr(&o));
    let report = stdout(&o);
    assert!(report.contains("2 row(s) across 2 run(s)"), "{report}");
    assert!(report.contains("extracted"), "{report}");
    assert!(report.contains("k4"), "{report}");
    // Identical deterministic work on both runs: drift is +0.
    assert!(
        report.contains("Work-unit drift") && report.contains("+0"),
        "{report}"
    );
    // Markdown mode renders pipe tables.
    let o = run(&["report", ledger.to_str().unwrap(), "--md"]);
    assert_eq!(code(&o), 0);
    assert!(stdout(&o).contains("| verdict | rows |"), "{}", stdout(&o));

    // A torn final line (crash mid-append) is tolerated and reported.
    std::fs::write(&ledger, format!("{text}{{\"type\":\"run\",\"trunc")).unwrap();
    let o = run(&["report", ledger.to_str().unwrap()]);
    assert_eq!(code(&o), 0, "stderr: {}", stderr(&o));
    assert!(
        stdout(&o).contains("torn final line ignored"),
        "{}",
        stdout(&o)
    );
}

#[test]
fn batch_trace_critical_path_is_bounded() {
    // The ISSUE acceptance check: on a --threads 8 batch trace the
    // reported critical path is <= the total wall clock and >= the
    // longest single span.
    let dir = temp_dir();
    let manifest = dir.join("cp_batch.json");
    std::fs::write(
        &manifest,
        r#"{
            "field": {"k": 8},
            "queries": [
                {"name": "m1", "op": "equiv",
                 "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
                {"name": "sq", "op": "extract", "circuit": {"gen": "squarer"}},
                {"name": "ad", "op": "extract", "circuit": {"gen": "adder"}},
                {"name": "mv", "op": "extract", "circuit": {"gen": "mastrovito"}}
            ]
        }"#,
    )
    .unwrap();
    let trace_path = dir.join("cp_batch_trace.jsonl");
    let o = run(&[
        "batch",
        manifest.to_str().unwrap(),
        "--threads",
        "8",
        "--trace-json",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(code(&o), 0, "stderr: {}", stderr(&o));

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let trace = Trace::from_jsonl(&text).expect("batch trace parses strictly");
    let longest_span_us = trace
        .spans()
        .iter()
        .map(|s| s.duration.as_micros() as u64)
        .max()
        .expect("batch trace has spans");

    let o = run(&["flame", trace_path.to_str().unwrap(), "--critical-path"]);
    assert_eq!(code(&o), 0, "stderr: {}", stderr(&o));
    let report = stdout(&o);
    // "critical path: <path>us of <wall>us wall (..%), n of m span(s)"
    let nums: Vec<u64> = report
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    let (path_us, wall_us) = (nums[0], nums[1]);
    assert!(path_us <= wall_us, "critical path exceeds wall: {report:?}");
    assert!(
        path_us >= longest_span_us,
        "critical path {path_us}us below longest span {longest_span_us}us: {report:?}"
    );

    // Both flamegraph exports succeed on the same trace.
    let o = run(&["flame", trace_path.to_str().unwrap()]);
    assert_eq!(code(&o), 0);
    parse_folded(&stdout(&o)).expect("folded export parses");
    let o = run(&["flame", trace_path.to_str().unwrap(), "--out", "speedscope"]);
    assert_eq!(code(&o), 0);
    assert!(stdout(&o).contains("speedscope.app/file-format-schema.json"));
}
