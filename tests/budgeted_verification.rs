//! Acceptance tests for deadline-budgeted verification: a `Verifier` query
//! under a resource budget must always return a *sound* verdict — proven
//! equivalent, refuted with a counterexample, or `Unknown` naming the
//! exhausted resource — and must never panic, hang, or silently exceed the
//! budget.
//!
//! The headline case is the paper's k = 163 NIST field with a 100 ms
//! deadline: far too little time for the word-level algebra or the SAT
//! miter, so the ladder must degrade to `Unknown` quickly. In release
//! builds the pipeline's poll granularity keeps the overshoot within a
//! small multiple of the deadline; debug builds are an order of magnitude
//! slower, so the test only asserts a loose bound.

use gfab::circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
use gfab::core::equiv::Verdict;
use gfab::core::Extraction;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::Verifier;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn field(k: usize) -> Arc<GfContext> {
    GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
}

#[test]
fn k163_with_100ms_deadline_returns_sound_verdict() {
    let ctx = field(163);
    let spec = mastrovito_multiplier(&ctx);
    let impl_ = montgomery_multiplier_hier(&ctx).flatten();
    let started = Instant::now();
    let report = Verifier::new(&ctx)
        .deadline(Duration::from_millis(100))
        .check(&spec, &impl_)
        .expect("budget exhaustion degrades, it never errors");
    let elapsed = started.elapsed();
    // The circuits ARE equivalent, so any decided verdict must say so; an
    // Unknown must name the exhausted resource. Refutation would be unsound.
    match &report.verdict {
        Verdict::Equivalent { .. } | Verdict::EquivalentBySat { .. } => {}
        Verdict::Unknown { reason } => {
            assert!(
                reason.contains("deadline") || reason.contains("budget"),
                "Unknown must name the exhausted resource, got: {reason}"
            );
        }
        refuted => panic!("unsound verdict on equivalent circuits: {refuted:?}"),
    }
    // Loose wall bound (debug builds run the polls an order of magnitude
    // slower than release; the strict small-multiple claim is documented
    // in DESIGN.md and holds for release builds).
    let bound = if cfg!(debug_assertions) {
        Duration::from_secs(120)
    } else {
        Duration::from_secs(10)
    };
    assert!(
        elapsed < bound,
        "100ms-budgeted query took {elapsed:?} (bound {bound:?})"
    );
}

#[test]
fn timed_out_extraction_reports_phase_and_reason() {
    // A deadline the k=32 extraction cannot meet. Depending on where the
    // poll fires, the trip surfaces either as a structured TimedOut from
    // the guided reduction (an Ok, with stats recording what ran out) or
    // as a BudgetExhausted error from an earlier phase that has no
    // partial result (model construction) — both must name the phase.
    let ctx = field(32);
    let nl = mastrovito_multiplier(&ctx);
    let result = Verifier::new(&ctx)
        .deadline(Duration::from_millis(1))
        .extract(&nl);
    match result {
        Ok(report) => {
            let flat = report.as_flat().unwrap();
            match &flat.outcome {
                Extraction::TimedOut { phase, .. } => {
                    assert!(
                        !phase.to_string().is_empty(),
                        "timed-out phase must be named"
                    );
                }
                other => panic!("expected TimedOut under a 1ms deadline, got {other:?}"),
            }
            assert!(
                flat.stats.budget_exhausted.is_some(),
                "stats must record the exhaustion"
            );
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("budget exhausted during") && !msg.ends_with("during : "),
                "error must name the exhausted phase: {msg}"
            );
        }
    }
}

#[test]
fn deadline_unknown_names_the_wall_clock() {
    // Equivalent k=32 pair, 2 ms deadline: word level times out, the SAT
    // rung inherits an already-dead clock, and the Unknown reason must
    // blame the deadline on both rungs.
    let ctx = field(32);
    let spec = mastrovito_multiplier(&ctx);
    let impl_ = montgomery_multiplier_hier(&ctx).flatten();
    let report = Verifier::new(&ctx)
        .deadline(Duration::from_millis(2))
        .check(&spec, &impl_)
        .unwrap();
    match &report.verdict {
        Verdict::Unknown { reason } => {
            assert!(
                reason.contains("deadline"),
                "reason must blame the wall clock: {reason}"
            );
            assert!(
                reason.contains("SAT fallback"),
                "reason must show the fallback was attempted: {reason}"
            );
        }
        other => panic!("expected Unknown under a 2ms deadline, got {other:?}"),
    }
}

#[test]
fn roomy_deadline_still_decides_small_fields() {
    // A generous deadline must not perturb a query that fits inside it:
    // the k=8 pair is decided at word level exactly as without a budget.
    let ctx = field(8);
    let spec = mastrovito_multiplier(&ctx);
    let impl_ = montgomery_multiplier_hier(&ctx).flatten();
    let plain = Verifier::new(&ctx).check(&spec, &impl_).unwrap();
    let budgeted = Verifier::new(&ctx)
        .deadline(Duration::from_secs(600))
        .check(&spec, &impl_)
        .unwrap();
    assert!(plain.verdict.is_equivalent());
    assert!(budgeted.verdict.is_equivalent());
    assert!(
        matches!(budgeted.verdict, Verdict::Equivalent { .. }),
        "word level (not the fallback) must decide within a roomy deadline"
    );
}
