//! Differential suite for the zero-allocation GF(2^k) coefficient kernels.
//!
//! Every operation of the optimized path (windowed comb multiply,
//! spread-table squaring, precomputed modular reduction, batch inversion)
//! is checked element-for-element against the bit-serial
//! `gfab_field::reference` oracle, over:
//!
//! * all five NIST degrees (sparse pentanomial/trinomial moduli, the
//!   shift-XOR reduction path), and
//! * seeded random *dense* irreducible moduli at degrees straddling the
//!   limb boundaries (2, 8, 63, 64, 65, 128, 129), which force the
//!   table-driven dense reduction path.
//!
//! Also asserted here: the zero/one/α algebraic edges, batch-inversion
//! error handling, and the inline-residency guarantee — no coefficient
//! result may spill to the heap for k ≤ 571.

use gfab::field::nist::{irreducible_polynomial, NIST_DEGREES};
use gfab::field::rng::Rng;
use gfab::field::{kernel, reference, FieldError, Gf, Gf2Poly, GfContext};

/// Degrees for the random dense-modulus sweep: limb-boundary crossings.
const DENSE_DEGREES: [usize; 7] = [2, 8, 63, 64, 65, 128, 129];

/// A seeded random polynomial of exact degree `k`.
fn random_monic(k: usize, rng: &mut Rng) -> Gf2Poly {
    let mut limbs = vec![0u64; k / 64 + 1];
    for w in &mut limbs {
        *w = rng.next_u64();
    }
    let mut p = Gf2Poly::from_limbs(limbs);
    // Clear everything at and above x^k, then force the leading term.
    p = p.rem(&Gf2Poly::monomial(k));
    p.set_coeff(k, true);
    p
}

/// A seeded random *irreducible* polynomial of degree `k` (rejection
/// sampling; irreducibles of degree k have density ~1/k, so this is fast).
fn random_dense_irreducible(k: usize, rng: &mut Rng) -> Gf2Poly {
    loop {
        let mut p = random_monic(k, rng);
        p.set_coeff(0, true); // x | p would be reducible
        if p.is_irreducible() {
            return p;
        }
    }
}

fn random_element(ctx: &GfContext, rng: &mut Rng) -> Gf {
    ctx.random(rng)
}

/// The core differential check: `rounds` random mul/square/inv triples
/// plus the algebraic edges, for one field.
fn check_field(ctx: &GfContext, rng: &mut Rng, rounds: usize) {
    let m = ctx.modulus();
    for round in 0..rounds {
        let a = random_element(ctx, rng);
        let b = random_element(ctx, rng);
        assert_eq!(
            ctx.mul(&a, &b).as_poly(),
            &reference::field_mul(m, a.as_poly(), b.as_poly()),
            "mul mismatch k={} round={round}",
            ctx.k()
        );
        assert_eq!(
            ctx.square(&a).as_poly(),
            &reference::field_square(m, a.as_poly()),
            "square mismatch k={} round={round}",
            ctx.k()
        );
        if !a.is_zero() {
            let want = reference::field_inv(m, a.as_poly()).expect("nonzero inverts");
            assert_eq!(
                ctx.inv(&a).expect("nonzero inverts").as_poly(),
                &want,
                "inv mismatch k={} round={round}",
                ctx.k()
            );
        }
    }
    // Algebraic edges: 0 annihilates, 1 is neutral, α² = x² mod P.
    let alpha = ctx.alpha();
    assert!(ctx.mul(&ctx.zero(), &alpha).is_zero());
    assert!(ctx.square(&ctx.zero()).is_zero());
    assert_eq!(ctx.mul(&ctx.one(), &alpha), alpha);
    assert_eq!(ctx.square(&ctx.one()), ctx.one());
    assert_eq!(
        ctx.square(&alpha).as_poly(),
        &reference::field_square(m, &Gf2Poly::x())
    );
}

#[test]
fn kernels_match_reference_on_nist_fields() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0001);
    for k in NIST_DEGREES {
        let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
        check_field(&ctx, &mut rng, 12);
    }
}

#[test]
fn kernels_match_reference_on_random_dense_moduli() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0002);
    for k in DENSE_DEGREES {
        // Degree-2 irreducibles are rare enough (only x²+x+1) that the
        // fixed NIST-style table modulus is used below k=3.
        let modulus = if k < 3 {
            irreducible_polynomial(k).unwrap()
        } else {
            random_dense_irreducible(k, &mut rng)
        };
        let ctx = GfContext::new(modulus).unwrap();
        check_field(&ctx, &mut rng, 12);
    }
}

#[test]
fn batch_inversion_matches_individual_inverses() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0003);
    for k in [8, 64, 163, 571] {
        let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
        let xs: Vec<Gf> = (0..17)
            .map(|_| loop {
                let x = random_element(&ctx, &mut rng);
                if !x.is_zero() {
                    break x;
                }
            })
            .collect();
        let inv = ctx.batch_inv(&xs).expect("no zeros");
        assert_eq!(inv.len(), xs.len());
        for (x, xi) in xs.iter().zip(&inv) {
            assert_eq!(xi, &ctx.inv(x).unwrap(), "batch_inv disagrees at k={k}");
            assert!(ctx.mul(x, xi).is_one());
        }
        // Empty batch: trivially fine.
        assert_eq!(ctx.batch_inv(&[]).unwrap(), Vec::new());
    }
}

#[test]
fn batch_inversion_rejects_zero_without_corrupting_anything() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0004);
    let ctx = GfContext::new(irreducible_polynomial(163).unwrap()).unwrap();
    let mut xs: Vec<Gf> = (0..5).map(|_| random_element(&ctx, &mut rng)).collect();
    xs.insert(3, ctx.zero());
    match ctx.batch_inv(&xs) {
        Err(FieldError::ZeroInverse) => {}
        other => panic!("expected ZeroInverse, got {other:?}"),
    }
    // The inputs are untouched and still invert individually.
    for (i, x) in xs.iter().enumerate() {
        if i != 3 {
            assert!(ctx.mul(x, &ctx.inv(x).unwrap()).is_one());
        }
    }
}

#[test]
fn coefficient_results_stay_inline_for_nist_fields() {
    // The acceptance property behind the --mem-stats numbers: at every
    // NIST degree (through k=571, the 9-limb inline ceiling), no kernel
    // result may spill to heap limb storage.
    let mut rng = Rng::seed_from_u64(0xD1FF_0005);
    for k in NIST_DEGREES {
        let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
        let xs: Vec<Gf> = (0..24)
            .map(|_| loop {
                let x = random_element(&ctx, &mut rng);
                if !x.is_zero() {
                    break x;
                }
            })
            .collect();
        let before = kernel::snapshot();
        let mut acc = ctx.one();
        for pair in xs.chunks(2) {
            acc = ctx.mul(&acc, &ctx.mul(&pair[0], &pair[1]));
            acc = ctx.square(&acc);
        }
        let inv = ctx.batch_inv(&xs).unwrap();
        assert!(inv.iter().all(|x| x.as_poly().is_inline()));
        assert!(acc.as_poly().is_inline());
        let delta = kernel::snapshot().delta_since(&before);
        assert_eq!(
            delta.heap_results, 0,
            "k={k}: kernel results spilled to the heap"
        );
        assert!(delta.inline_results > 0);
        assert!(delta.coeff_muls > 0 && delta.coeff_squares > 0);
        assert!(delta.reduction_folds > 0);
    }
}

#[test]
fn kernel_counter_deltas_are_deterministic() {
    // Two identical seeded workloads must report identical counter
    // deltas — the property that makes the per-span kernel telemetry
    // meaningful in traces.
    let run = || {
        let mut rng = Rng::seed_from_u64(0xD1FF_0006);
        let ctx = GfContext::new(irreducible_polynomial(233).unwrap()).unwrap();
        let before = kernel::snapshot();
        let mut acc = ctx.alpha();
        for _ in 0..40 {
            let x = random_element(&ctx, &mut rng);
            acc = ctx.mul(&acc, &x);
            acc = ctx.square(&acc);
        }
        kernel::snapshot().delta_since(&before)
    };
    assert_eq!(run(), run());
}
