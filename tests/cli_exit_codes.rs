//! Integration tests for the `gfab` binary's exit-code contract:
//!
//! * 0 — equivalent / success,
//! * 1 — inequivalent (a counterexample was found),
//! * 2 — usage error or malformed input,
//! * 3 — verdict unknown (resource budget exhausted before a decision).
//!
//! The binary is spawned for real (via `CARGO_BIN_EXE_gfab`), netlist
//! fixtures are generated with its own `gen` subcommand, and both the exit
//! status and the shape of stdout/stderr are asserted.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gfab"))
        .args(args)
        .output()
        .expect("gfab binary spawns")
}

fn code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("gfab exits normally, not by signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Generates a netlist fixture into a per-process temp directory.
fn fixture(arch: &str, k: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gfab-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{arch}{k}.nl"));
    if !path.exists() {
        let out = run(&[
            "gen",
            arch,
            "--k",
            &k.to_string(),
            "-o",
            path.to_str().unwrap(),
        ]);
        assert_eq!(code(&out), 0, "gen {arch} k={k} failed: {}", stderr(&out));
    }
    path
}

#[test]
fn equivalent_pair_exits_zero() {
    let spec = fixture("mastrovito", 4);
    let impl_ = fixture("montgomery", 4);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--k",
        "4",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("EQUIVALENT"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn inequivalent_pair_exits_one() {
    // Adder and multiplier share the (A, B) -> Z signature but differ.
    let spec = fixture("mastrovito", 4);
    let impl_ = fixture("adder", 4);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--k",
        "4",
    ]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("INEQUIVALENT"), "stdout: {text}");
    assert!(text.contains("counterexample"), "stdout: {text}");
}

#[test]
fn usage_errors_exit_two() {
    // Missing arguments.
    let out = run(&["equiv", "only-one-path.nl", "--k", "4"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("error:"), "stderr: {}", stderr(&out));
    // Unknown command.
    let out = run(&["frobnicate"]);
    assert_eq!(code(&out), 2);
    // Bad timeout value.
    let spec = fixture("mastrovito", 4);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        spec.to_str().unwrap(),
        "--k",
        "4",
        "--timeout",
        "soon",
    ]);
    assert_eq!(code(&out), 2);
    assert!(
        stderr(&out).contains("bad timeout"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn exhausted_timeout_exits_three() {
    // A 1 ms deadline on a k=32 query: the word-level pipeline trips its
    // budget polls, the SAT fallback inherits an already-dead clock, and
    // the verdict degrades to UNKNOWN — exit 3, never a panic or a hang.
    let spec = fixture("mastrovito", 32);
    let impl_ = fixture("montgomery", 32);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--k",
        "32",
        "--timeout",
        "1ms",
    ]);
    assert_eq!(
        code(&out),
        3,
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("UNKNOWN"), "stdout: {text}");
    // The reason must name an exhausted resource, not be an empty shrug.
    assert!(
        text.contains("budget") || text.contains("deadline") || text.contains("exhausted"),
        "stdout: {text}"
    );
}

#[test]
fn sat_equiv_conflict_budget_exits_three() {
    let spec = fixture("mastrovito", 8);
    let impl_ = fixture("montgomery", 8);
    let out = run(&[
        "sat-equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--conflicts",
        "1",
    ]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("UNKNOWN"), "stdout: {text}");
    assert!(text.contains("conflict budget"), "stdout: {text}");
}

#[test]
fn extract_succeeds_and_times_out() {
    let nl = fixture("mastrovito", 4);
    let out = run(&["extract", nl.to_str().unwrap(), "--k", "4"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("Z = A*B"), "stdout: {}", stdout(&out));

    let big = fixture("mastrovito", 32);
    let out = run(&[
        "extract",
        big.to_str().unwrap(),
        "--k",
        "32",
        "--timeout",
        "1ms",
    ]);
    assert_eq!(code(&out), 3, "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("TIMED OUT"),
        "stdout: {}",
        stdout(&out)
    );
}
