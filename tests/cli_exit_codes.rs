//! Integration tests for the `gfab` binary's exit-code contract:
//!
//! * 0 — equivalent / success,
//! * 1 — inequivalent (a counterexample was found),
//! * 2 — usage error or malformed input,
//! * 3 — verdict unknown (resource budget exhausted before a decision).
//!
//! The binary is spawned for real (via `CARGO_BIN_EXE_gfab`), netlist
//! fixtures are generated with its own `gen` subcommand, and both the exit
//! status and the shape of stdout/stderr are asserted.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gfab"))
        .args(args)
        .output()
        .expect("gfab binary spawns")
}

fn code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("gfab exits normally, not by signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Generates a netlist fixture into a per-process temp directory.
fn fixture(arch: &str, k: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gfab-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{arch}{k}.nl"));
    if !path.exists() {
        let out = run(&[
            "gen",
            arch,
            "--k",
            &k.to_string(),
            "-o",
            path.to_str().unwrap(),
        ]);
        assert_eq!(code(&out), 0, "gen {arch} k={k} failed: {}", stderr(&out));
    }
    path
}

#[test]
fn equivalent_pair_exits_zero() {
    let spec = fixture("mastrovito", 4);
    let impl_ = fixture("montgomery", 4);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--k",
        "4",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("EQUIVALENT"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn inequivalent_pair_exits_one() {
    // Adder and multiplier share the (A, B) -> Z signature but differ.
    let spec = fixture("mastrovito", 4);
    let impl_ = fixture("adder", 4);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--k",
        "4",
    ]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("INEQUIVALENT"), "stdout: {text}");
    assert!(text.contains("counterexample"), "stdout: {text}");
}

#[test]
fn usage_errors_exit_two() {
    // Missing arguments.
    let out = run(&["equiv", "only-one-path.nl", "--k", "4"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("error:"), "stderr: {}", stderr(&out));
    // Unknown command.
    let out = run(&["frobnicate"]);
    assert_eq!(code(&out), 2);
    // Bad timeout value.
    let spec = fixture("mastrovito", 4);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        spec.to_str().unwrap(),
        "--k",
        "4",
        "--timeout",
        "soon",
    ]);
    assert_eq!(code(&out), 2);
    assert!(
        stderr(&out).contains("bad timeout"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn exhausted_timeout_exits_three() {
    // A 1 ms deadline on a k=32 query: the word-level pipeline trips its
    // budget polls, the SAT fallback inherits an already-dead clock, and
    // the verdict degrades to UNKNOWN — exit 3, never a panic or a hang.
    let spec = fixture("mastrovito", 32);
    let impl_ = fixture("montgomery", 32);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--k",
        "32",
        "--timeout",
        "1ms",
    ]);
    assert_eq!(
        code(&out),
        3,
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("UNKNOWN"), "stdout: {text}");
    // The reason must name an exhausted resource, not be an empty shrug.
    assert!(
        text.contains("budget") || text.contains("deadline") || text.contains("exhausted"),
        "stdout: {text}"
    );
}

#[test]
fn sat_equiv_conflict_budget_exits_three() {
    let spec = fixture("mastrovito", 8);
    let impl_ = fixture("montgomery", 8);
    let out = run(&[
        "sat-equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--conflicts",
        "1",
    ]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("UNKNOWN"), "stdout: {text}");
    assert!(text.contains("conflict budget"), "stdout: {text}");
}

#[test]
fn version_prints_cargo_package_version() {
    // The version string leads with the Cargo package version and may
    // carry a `+<git-describe>` build suffix (see src/version.rs).
    for flag in ["--version", "-V", "version"] {
        let out = run(&[flag]);
        assert_eq!(code(&out), 0);
        let text = stdout(&out);
        let text = text.trim();
        let prefix = format!("gfab {}", env!("CARGO_PKG_VERSION"));
        assert!(
            text == prefix || text.starts_with(&format!("{prefix}+")),
            "unexpected version line: {text}"
        );
    }
}

#[test]
fn help_exits_zero_and_names_every_subcommand() {
    // The usage text is the discovery surface for the whole CLI: every
    // dispatched subcommand must appear in it. (print_usage writes to
    // stderr so stdout stays clean for piped output.)
    const SUBCOMMANDS: [&str; 15] = [
        "extract",
        "verify-spec",
        "equiv",
        "sat-equiv",
        "batch",
        "gen",
        "info",
        "trace-check",
        "trace-diff",
        "trace-agg",
        "flame",
        "report",
        "watch",
        "bench-diff",
        "fuzz",
    ];
    for flag in ["--help", "-h", "help"] {
        let out = run(&[flag]);
        assert_eq!(code(&out), 0, "`gfab {flag}` must exit 0");
        let text = stderr(&out);
        for cmd in SUBCOMMANDS {
            assert!(
                text.contains(cmd),
                "`gfab {flag}` does not mention `{cmd}`:\n{text}"
            );
        }
        // The live-output flags are part of the discovery surface too.
        for flag_name in ["--progress", "--events", "--events-cap"] {
            assert!(
                text.contains(flag_name),
                "`gfab {flag}` does not mention `{flag_name}`:\n{text}"
            );
        }
    }
}

/// Writes a batch manifest into the per-process temp dir.
fn manifest_fixture(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gfab-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write manifest");
    path
}

#[test]
fn batch_reports_per_query_verdicts_and_caches_duplicates() {
    // Two identical equiv queries plus one refuted one: overall exit 1,
    // one JSONL line per query, and the duplicate must hit the cache.
    let path = manifest_fixture(
        "batch_mixed.json",
        r#"{
            "field": {"k": 4},
            "queries": [
                {"name": "good", "op": "equiv",
                 "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
                {"name": "good-again", "op": "equiv",
                 "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
                {"name": "bad", "op": "equiv",
                 "spec": {"gen": "mastrovito"}, "impl": {"gen": "adder"}}
            ]
        }"#,
    );
    let out = run(&["batch", path.to_str().unwrap(), "--threads", "2"]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "3 queries + 1 summary: {text}");
    assert!(lines[0].contains("\"query\":\"good\"") && lines[0].contains("\"exit\":0"));
    assert!(lines[1].contains("\"query\":\"good-again\"") && lines[1].contains("\"exit\":0"));
    assert!(lines[2].contains("\"verdict\":\"inequivalent\"") && lines[2].contains("\"exit\":1"));
    let summary = lines[3];
    assert!(summary.contains("\"batch-summary\""), "{summary}");
    let hits: u64 = summary
        .split("\"hits\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("summary carries cache hits");
    assert!(hits > 0, "duplicate queries must hit the cache: {summary}");
}

#[test]
fn batch_budget_exhaustion_exits_three() {
    // A 1 ms budget on a k=64 extraction dies in model construction,
    // before any verdict-bearing report exists. That is a timeout
    // (exit 3) under the uniform contract — not a usage error (exit 2)
    // — and the spent result must never be cached.
    let path = manifest_fixture(
        "batch_deadline.json",
        r#"{
            "field": {"k": 64},
            "queries": [{"name": "slow", "op": "extract",
                         "circuit": {"gen": "mastrovito"}}]
        }"#,
    );
    let out = run(&["batch", path.to_str().unwrap(), "--timeout", "1ms"]);
    assert_eq!(
        code(&out),
        3,
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(
        text.contains(r#""op":"timeout""#) && text.contains("budget"),
        "stdout: {text}"
    );
    assert!(text.contains(r#""entries":0"#), "stdout: {text}");
}

#[test]
fn batch_usage_errors_exit_two() {
    let out = run(&["batch"]);
    assert_eq!(code(&out), 2);
    let out = run(&["batch", "/definitely/not/a/manifest.json"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("error:"), "stderr: {}", stderr(&out));
    let path = manifest_fixture(
        "batch_bad_key.json",
        r#"{"field": {"k": 4}, "queries": [{"op": "extract", "circut": {"gen": "adder"}}]}"#,
    );
    let out = run(&["batch", path.to_str().unwrap()]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("circut"), "stderr: {}", stderr(&out));
}

#[test]
fn batch_warm_repeat_does_no_new_work() {
    let path = manifest_fixture(
        "batch_repeat.json",
        r#"{
            "field": {"k": 4},
            "queries": [
                {"name": "sq", "op": "extract", "circuit": {"gen": "squarer"}},
                {"name": "mont", "op": "extract", "circuit": {"gen": "montgomery"}}
            ]
        }"#,
    );
    let out = run(&["batch", path.to_str().unwrap(), "--repeat", "2"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let work: Vec<u64> = text
        .lines()
        .filter(|l| l.contains("\"batch-summary\""))
        .map(|l| {
            l.split("\"work_units\":")
                .nth(1)
                .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
                .and_then(|s| s.parse().ok())
                .expect("summary carries work_units")
        })
        .collect();
    assert_eq!(work.len(), 2, "one summary per pass: {text}");
    assert!(work[0] > 0, "cold pass computes: {text}");
    assert_eq!(work[1], 0, "warm pass recomputes nothing: {text}");
}

#[test]
fn extract_succeeds_and_times_out() {
    let nl = fixture("mastrovito", 4);
    let out = run(&["extract", nl.to_str().unwrap(), "--k", "4"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("Z = A*B"), "stdout: {}", stdout(&out));

    let big = fixture("mastrovito", 32);
    let out = run(&[
        "extract",
        big.to_str().unwrap(),
        "--k",
        "32",
        "--timeout",
        "1ms",
    ]);
    assert_eq!(code(&out), 3, "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("TIMED OUT"),
        "stdout: {}",
        stdout(&out)
    );
}
