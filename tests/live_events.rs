//! Integration tests for the live event-streaming layer: the
//! `--progress` board must never leak ANSI escapes into a pipe, the
//! `--events` NDJSON stream must validate and must not perturb the
//! deterministic computation, and the ledger followers (`gfab watch`,
//! `gfab report`) must survive a concurrently appending writer.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gfab"))
        .args(args)
        .output()
        .expect("gfab binary spawns")
}

fn code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("gfab exits normally, not by signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A per-test scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gfab-live-tests-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Generates a netlist fixture via the binary's own `gen` subcommand.
fn fixture(dir: &std::path::Path, arch: &str, k: usize) -> PathBuf {
    let path = dir.join(format!("{arch}{k}.nl"));
    if !path.exists() {
        let out = run(&[
            "gen",
            arch,
            "--k",
            &k.to_string(),
            "-o",
            path.to_str().unwrap(),
        ]);
        assert_eq!(code(&out), 0, "gen {arch} k={k} failed: {}", stderr(&out));
    }
    path
}

#[test]
fn progress_piped_emits_plain_text_and_no_ansi_escapes() {
    // `Command::output` wires stdout/stderr to pipes, so the binary sees
    // a non-terminal and must degrade to plain periodic lines.
    let dir = scratch("ansi");
    let spec = fixture(&dir, "mastrovito", 8);
    let impl_ = fixture(&dir, "montgomery", 8);
    let out = run(&[
        "equiv",
        spec.to_str().unwrap(),
        impl_.to_str().unwrap(),
        "--k",
        "8",
        "--progress",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        !out.stdout.contains(&0x1b) && !out.stderr.contains(&0x1b),
        "piped --progress output must carry no ESC byte\nstdout: {:?}\nstderr: {:?}",
        stdout(&out),
        stderr(&out)
    );
    let err = stderr(&out);
    // At least one in-flight update plus the closing summary line.
    let progress_lines = err.lines().filter(|l| l.starts_with("progress:")).count();
    assert!(progress_lines >= 2, "stderr: {err}");
    assert!(err.contains("done in"), "stderr: {err}");
}

/// One batch run's verdict lines (timing fields stripped) and its
/// deterministic work-unit total from the merged trace.
fn batch_fingerprint(manifest: &str, threads: &str, events: Option<&str>) -> (Vec<String>, u64) {
    let trace_path = format!(
        "{manifest}.trace-{threads}-{}.jsonl",
        if events.is_some() { "on" } else { "off" }
    );
    let mut args = vec![
        "batch",
        manifest,
        "--threads",
        threads,
        "--trace-json",
        &trace_path,
    ];
    if let Some(ev) = events {
        args.extend_from_slice(&["--events", ev]);
    }
    let out = run(&args);
    // The manifest includes one refuted pair, so the deterministic
    // overall exit is 1 — with or without the event stream.
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
    let verdicts: Vec<String> = stdout(&out)
        .lines()
        .filter(|l| l.starts_with("{\"query\":"))
        .map(|l| {
            // Everything before the queue/wall timing fields is
            // deterministic: query name, op, verdict, exit.
            l.split(",\"queue_us\":").next().unwrap().to_string()
        })
        .collect();
    let text = std::fs::read_to_string(&trace_path).expect("trace file");
    let trace = gfab::telemetry::Trace::from_jsonl(&text).expect("valid trace");
    (verdicts, trace.work_units())
}

#[test]
fn events_stream_never_perturbs_verdicts_or_work_units() {
    let dir = scratch("determinism");
    let manifest = dir.join("batch.json");
    std::fs::write(
        &manifest,
        r#"{
            "field": {"k": 8},
            "queries": [
                {"name": "mast-mont", "op": "equiv",
                 "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
                {"name": "mast-add", "op": "equiv",
                 "spec": {"gen": "mastrovito"}, "impl": {"gen": "adder"}},
                {"name": "sq", "op": "extract", "circuit": {"gen": "squarer"}}
            ]
        }"#,
    )
    .expect("write manifest");
    let manifest = manifest.to_str().unwrap();
    let events_path = dir.join("events.jsonl");
    for threads in ["1", "8"] {
        let (off_verdicts, off_work) = batch_fingerprint(manifest, threads, None);
        let (on_verdicts, on_work) =
            batch_fingerprint(manifest, threads, Some(events_path.to_str().unwrap()));
        assert_eq!(
            off_verdicts, on_verdicts,
            "verdict lines must be byte-identical with --events on (threads {threads})"
        );
        assert_eq!(
            off_work, on_work,
            "work units must be identical with --events on (threads {threads})"
        );
        assert!(!off_verdicts.is_empty(), "batch produced no result lines");
    }
}

#[test]
fn events_file_validates_under_trace_check_even_without_footer() {
    let dir = scratch("stream");
    let nl = fixture(&dir, "mastrovito", 16);
    let events = dir.join("extract-events.jsonl");
    let out = run(&[
        "extract",
        nl.to_str().unwrap(),
        "--k",
        "16",
        "--events",
        events.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));

    let out = run(&["trace-check", events.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("valid events"), "stdout: {text}");
    assert!(text.contains("complete"), "stdout: {text}");

    // A mid-run tail has no footer yet: still a valid (in-flight) stream.
    let full = std::fs::read_to_string(&events).expect("events file");
    assert!(full.lines().last().unwrap().contains("\"events-end\""));
    let headless: String = full
        .lines()
        .take(full.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    let partial = dir.join("partial-events.jsonl");
    std::fs::write(&partial, headless).expect("write partial");
    let out = run(&["trace-check", partial.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("in-flight"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn tiny_events_cap_reports_drops_consistently() {
    // --events-cap 1 starves the queue; whatever the race drops, the
    // stream must stay valid and the footer/stderr must agree.
    let dir = scratch("cap");
    let manifest = dir.join("batch.json");
    std::fs::write(
        &manifest,
        r#"{
            "field": {"k": 12},
            "queries": [
                {"name": "a", "op": "equiv",
                 "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
                {"name": "b", "op": "extract", "circuit": {"gen": "squarer"}}
            ]
        }"#,
    )
    .expect("write manifest");
    let events = dir.join("events.jsonl");
    let out = run(&[
        "batch",
        manifest.to_str().unwrap(),
        "--events",
        events.to_str().unwrap(),
        "--events-cap",
        "1",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let text = std::fs::read_to_string(&events).expect("events file");
    let stream = gfab::telemetry::EventStream::from_jsonl(&text).expect("valid stream");
    assert!(stream.complete, "finished run must write a footer");
    let dropped = stream.dropped.expect("footer carries the drop counter");
    if dropped > 0 {
        assert!(
            stderr(&out).contains("dropped under backpressure"),
            "stderr must surface {dropped} dropped event(s): {}",
            stderr(&out)
        );
    } else {
        assert!(!stderr(&out).contains("dropped under backpressure"));
    }
}

#[test]
fn watch_renders_a_board_and_skips_garbage_lines() {
    let dir = scratch("watch");
    let ledger = dir.join("ledger.jsonl");
    let nl = fixture(&dir, "squarer", 8);
    for _ in 0..2 {
        let out = run(&[
            "extract",
            nl.to_str().unwrap(),
            "--k",
            "8",
            "--ledger",
            ledger.to_str().unwrap(),
        ]);
        assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    }
    // Corruption from a hypothetical crashed writer: garbage in the
    // middle, a torn row at the end.
    let mut text = std::fs::read_to_string(&ledger).expect("ledger");
    let rows: Vec<&str> = text.lines().collect();
    assert_eq!(rows.len(), 2);
    text = format!(
        "{}\nnot json at all\n{}\n{{\"type\":\"run\",\"tor",
        rows[0], rows[1]
    );
    std::fs::write(&ledger, text).expect("rewrite ledger");

    let out = run(&["watch", ledger.to_str().unwrap(), "--iterations", "1"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let board = stdout(&out);
    assert!(board.contains("2 row(s)"), "stdout: {board}");
    assert!(board.contains("1 torn line(s) skipped"), "stdout: {board}");
    assert!(board.contains("verdicts: extracted=2"), "stdout: {board}");

    // `report` shares the lenient reader and must warn, not die.
    let out = run(&["report", ledger.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("skipped 1 torn/unparsable line(s)"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn lenient_reader_races_a_concurrently_appending_writer() {
    use gfab::telemetry::{Ledger, LedgerRow};
    let dir = scratch("race");
    let path = dir.join("ledger.jsonl");
    let writer_path = path.clone();
    const ROWS: u64 = 300;
    let writer = std::thread::spawn(move || {
        for i in 0..ROWS {
            let row = LedgerRow {
                ts_ms: i,
                run: "race-run".into(),
                producer: "test".into(),
                cmd: "extract".into(),
                fp: "fp".into(),
                query: format!("q{i}"),
                k: 8,
                verdict: "extracted".into(),
                exit: 0,
                work_units: i,
                wall_us: 10,
                mem_peak_bytes: None,
            };
            row.append(&writer_path).expect("append row");
        }
    });
    // Hammer the reader mid-append: every snapshot must parse without
    // an error, and complete rows must only ever accumulate.
    let mut last_rows = 0usize;
    while !writer.is_finished() {
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let (ledger, skipped) = Ledger::parse_lenient(&text);
        assert_eq!(skipped, 0, "line-atomic appends never produce garbage");
        assert!(
            ledger.rows.len() >= last_rows,
            "parsed rows went backwards: {} -> {}",
            last_rows,
            ledger.rows.len()
        );
        last_rows = ledger.rows.len();
    }
    writer.join().expect("writer thread");
    let text = std::fs::read_to_string(&path).expect("ledger");
    let (ledger, skipped) = Ledger::parse_lenient(&text);
    assert_eq!(ledger.rows.len() as u64, ROWS);
    assert_eq!(skipped, 0);
    assert!(!ledger.torn_tail);

    // And the CLI follower survives the same file while still growing.
    let out = run(&[
        "watch",
        path.to_str().unwrap(),
        "--iterations",
        "2",
        "--interval",
        "10ms",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("300 row(s)"), "{}", stdout(&out));
}
