#!/usr/bin/env bash
# CI perf-regression gate: re-runs the pinned benchmark workload
# (scripts/bench.sh --pinned) into a temp directory and diffs each table
# against the committed baselines (BENCH_table*.json in the repo root)
# with `gfab bench-diff --threshold`.
#
# Only deterministic fields gate — work counters (reduction steps, peak
# terms, gate counts) and verdict strings, which are bit-identical across
# machines and thread counts. Wall times and peak memory are reported as
# informational context but can never fail the gate, so this is safe to
# run on any CI machine.
#
# Threshold (percent growth allowed per integer field) comes from
# $PERF_GATE_THRESHOLD, default 5. Exit 1 on regression.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${PERF_GATE_THRESHOLD:-5}"

echo "== build (release) =="
cargo build --release --offline

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== run pinned workload =="
BENCH_DIR="$TMP" scripts/bench.sh --pinned >/dev/null

GFAB=target/release/gfab
status=0
for t in table1 table2 table3 table4; do
    base="BENCH_${t}.json"
    if [ ! -f "$base" ]; then
        echo "perf-gate: missing committed baseline $base" >&2
        exit 2
    fi
    echo "== bench-diff $t (threshold ${THRESHOLD}%) =="
    "$GFAB" bench-diff "$base" "$TMP/BENCH_${t}.json" --threshold "$THRESHOLD" || status=1
done

if [ "$status" -ne 0 ]; then
    echo "perf-gate: REGRESSION (see bench-diff output above)" >&2
    exit 1
fi
echo "perf-gate OK"
