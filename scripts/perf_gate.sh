#!/usr/bin/env bash
# CI perf-regression gate: re-runs the pinned benchmark workload
# (scripts/bench.sh --pinned) into a temp directory and diffs each table
# against the committed baselines (BENCH_table*.json in the repo root)
# with `gfab bench-diff --threshold`.
#
# Only deterministic fields gate — work counters (reduction steps, peak
# terms, gate counts) and verdict strings, which are bit-identical across
# machines and thread counts. Wall times and peak memory are reported as
# informational context but can never fail the gate, so this is safe to
# run on any CI machine.
#
# Threshold (percent growth allowed per integer field) comes from
# $PERF_GATE_THRESHOLD, default 5. Exit 1 on regression.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${PERF_GATE_THRESHOLD:-5}"

echo "== build (release) =="
cargo build --release --offline

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== run pinned workload =="
BENCH_DIR="$TMP" scripts/bench.sh --pinned >/dev/null

GFAB=target/release/gfab

echo "== batch cache gate: warm repeat must do strictly less work =="
# Run a fixed batch manifest twice in-process (--repeat 2) and compare
# the per-pass *work-unit* counters (reduction steps + gates modelled on
# cache misses — deterministic, machine-independent). The warm pass must
# come out strictly below the cold pass; anything else means the artifact
# cache stopped answering repeats.
cat > "$TMP/gate_batch.json" <<'MANIFEST'
{
  "field": {"k": 16},
  "queries": [
    {"name": "mont-eq",  "op": "equiv",
     "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
    {"name": "mont-dup", "op": "equiv",
     "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
    {"name": "squarer",  "op": "extract", "circuit": {"gen": "squarer"}}
  ]
}
MANIFEST
"$GFAB" batch "$TMP/gate_batch.json" --threads 2 --repeat 2 > "$TMP/gate_batch.out"
cold=$(grep '"pass":0' "$TMP/gate_batch.out" | grep -o '"work_units":[0-9]*' | tr -dc 0-9)
warm=$(grep '"pass":1' "$TMP/gate_batch.out" | grep -o '"work_units":[0-9]*' | tr -dc 0-9)
if [ -z "${cold:-}" ] || [ -z "${warm:-}" ]; then
    echo "perf-gate: batch summaries missing work_units" >&2
    cat "$TMP/gate_batch.out" >&2
    exit 2
fi
if [ "$warm" -ge "$cold" ]; then
    echo "perf-gate: warm batch pass did $warm work units vs $cold cold — cache regression" >&2
    exit 1
fi
echo "batch cache gate OK (cold $cold -> warm $warm work units)"

status=0
for t in table1 table2 table3 table4; do
    base="BENCH_${t}.json"
    if [ ! -f "$base" ]; then
        echo "perf-gate: missing committed baseline $base" >&2
        exit 2
    fi
    echo "== bench-diff $t (threshold ${THRESHOLD}%) =="
    "$GFAB" bench-diff "$base" "$TMP/BENCH_${t}.json" --threshold "$THRESHOLD" || status=1
done

if [ "$status" -ne 0 ]; then
    echo "perf-gate: REGRESSION (see bench-diff output above)" >&2
    exit 1
fi

echo "perf-gate OK"
