#!/usr/bin/env bash
# CI perf-regression gate: re-runs the pinned benchmark workload
# (scripts/bench.sh --pinned) into a temp directory and diffs each table
# against the committed baselines (BENCH_table*.json in the repo root)
# with `gfab bench-diff --threshold`.
#
# Only deterministic fields gate — work counters (reduction steps, peak
# terms, gate counts) and verdict strings, which are bit-identical across
# machines and thread counts. Wall times and peak memory are reported as
# informational context but can never fail the gate, so this is safe to
# run on any CI machine.
#
# Threshold (percent growth allowed per integer field) comes from
# $PERF_GATE_THRESHOLD, default 5. Exit 1 on regression.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${PERF_GATE_THRESHOLD:-5}"

echo "== build (release) =="
cargo build --release --offline
cargo build --release --offline -p gfab-bench

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== run pinned workload =="
BENCH_DIR="$TMP" scripts/bench.sh --pinned >/dev/null

GFAB=target/release/gfab

echo "== batch cache gate: warm repeat must do strictly less work =="
# Run a fixed batch manifest twice in-process (--repeat 2) and compare
# the per-pass *work-unit* counters (reduction steps + gates modelled on
# cache misses — deterministic, machine-independent). The warm pass must
# come out strictly below the cold pass; anything else means the artifact
# cache stopped answering repeats.
cat > "$TMP/gate_batch.json" <<'MANIFEST'
{
  "field": {"k": 16},
  "queries": [
    {"name": "mont-eq",  "op": "equiv",
     "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
    {"name": "mont-dup", "op": "equiv",
     "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
    {"name": "squarer",  "op": "extract", "circuit": {"gen": "squarer"}}
  ]
}
MANIFEST
"$GFAB" batch "$TMP/gate_batch.json" --threads 2 --repeat 2 > "$TMP/gate_batch.out"
cold=$(grep '"pass":0' "$TMP/gate_batch.out" | grep -o '"work_units":[0-9]*' | tr -dc 0-9)
warm=$(grep '"pass":1' "$TMP/gate_batch.out" | grep -o '"work_units":[0-9]*' | tr -dc 0-9)
if [ -z "${cold:-}" ] || [ -z "${warm:-}" ]; then
    echo "perf-gate: batch summaries missing work_units" >&2
    cat "$TMP/gate_batch.out" >&2
    exit 2
fi
if [ "$warm" -ge "$cold" ]; then
    echo "perf-gate: warm batch pass did $warm work units vs $cold cold — cache regression" >&2
    exit 1
fi
echo "batch cache gate OK (cold $cold -> warm $warm work units)"

echo "== fuzz work gate: pinned campaign vs committed baseline =="
# A pinned fuzz campaign's deterministic work-unit total (simulation
# rounds + Gröbner reduction steps + modelled gates + SAT conflicts) is
# asserted *exactly* against scripts/fuzz_work_baseline.txt: the
# campaign is a pure function of (seed, config), so any drift means an
# engine's work profile changed and the baseline must be consciously
# re-committed alongside the change that moved it.
"$GFAB" fuzz --seed 2024 --cases 24 --k-min 6 --k-max 8 --fault-rate 50 \
    --threads 2 > "$TMP/fuzz_gate.json"
fuzz_work=$(grep -o '"work_units":[0-9]*' "$TMP/fuzz_gate.json" | head -1 | tr -dc 0-9)
fuzz_base=$(tr -dc 0-9 < scripts/fuzz_work_baseline.txt)
if [ -z "${fuzz_work:-}" ] || [ -z "${fuzz_base:-}" ]; then
    echo "perf-gate: fuzz campaign or baseline missing work_units" >&2
    exit 2
fi
if [ "$fuzz_work" -ne "$fuzz_base" ]; then
    echo "perf-gate: fuzz work units drifted: $fuzz_base (baseline) -> $fuzz_work" >&2
    echo "  (if intentional, re-commit scripts/fuzz_work_baseline.txt)" >&2
    exit 1
fi
echo "fuzz work gate OK ($fuzz_work work units)"

echo "== kernel work gate: pinned coefficient-kernel profile vs baseline =="
# The pinned kernel workload is a pure function of (seed, code): its
# per-field work counters (coefficient muls/squares, reduction folds,
# inline-vs-heap residency) and FNV-1a result checksums must match
# scripts/kernel_work_baseline.txt *exactly*. Any drift means the
# arithmetic kernels changed their results or work profile; re-commit
# the baseline consciously alongside the change that moved it.
target/release/kernels --pinned > "$TMP/kernel_pinned.txt"
if ! diff -u scripts/kernel_work_baseline.txt "$TMP/kernel_pinned.txt"; then
    echo "perf-gate: kernel work profile drifted from baseline" >&2
    echo "  (if intentional, re-commit scripts/kernel_work_baseline.txt)" >&2
    exit 1
fi
echo "kernel work gate OK"

echo "== live events gate: --events must not perturb work units or verdicts =="
# The same equivalence query traced with and without the live event
# stream (and an in-flight --progress board) must produce identical
# per-phase work units in both directions and the same verdict line.
# Publishing rides a bounded non-blocking channel, so any drift here
# means an event tap leaked into the deterministic computation.
"$GFAB" gen mastrovito --k 16 -o "$TMP/gate_spec.nl"
"$GFAB" gen montgomery --k 16 -o "$TMP/gate_impl.nl"
"$GFAB" equiv "$TMP/gate_spec.nl" "$TMP/gate_impl.nl" --k 16 --threads 2 \
    --trace-json "$TMP/gate_off.jsonl" | grep '^EQUIVALENT' > "$TMP/gate_off.verdict"
"$GFAB" equiv "$TMP/gate_spec.nl" "$TMP/gate_impl.nl" --k 16 --threads 2 \
    --trace-json "$TMP/gate_on.jsonl" --progress \
    --events "$TMP/gate_events.jsonl" 2>/dev/null \
    | grep '^EQUIVALENT' > "$TMP/gate_on.verdict"
"$GFAB" trace-check "$TMP/gate_events.jsonl" | grep -q 'valid events'
if ! cmp -s "$TMP/gate_off.verdict" "$TMP/gate_on.verdict"; then
    echo "perf-gate: --events changed the verdict line" >&2
    diff "$TMP/gate_off.verdict" "$TMP/gate_on.verdict" >&2 || true
    exit 1
fi
"$GFAB" trace-diff "$TMP/gate_off.jsonl" "$TMP/gate_on.jsonl" --threshold 0 >/dev/null
"$GFAB" trace-diff "$TMP/gate_on.jsonl" "$TMP/gate_off.jsonl" --threshold 0 >/dev/null
echo "live events gate OK (work units identical with events on/off)"

status=0
for t in table1 table2 table3 table4; do
    base="BENCH_${t}.json"
    if [ ! -f "$base" ]; then
        echo "perf-gate: missing committed baseline $base" >&2
        exit 2
    fi
    echo "== bench-diff $t (threshold ${THRESHOLD}%) =="
    "$GFAB" bench-diff "$base" "$TMP/BENCH_${t}.json" --threshold "$THRESHOLD" || status=1
done

if [ "$status" -ne 0 ]; then
    echo "perf-gate: REGRESSION (see bench-diff output above)" >&2
    exit 1
fi

echo "perf-gate OK"
