#!/usr/bin/env bash
# Machine-readable benchmark sweep: runs the four paper-table binaries in
# --json mode and collects one JSONL file per table (BENCH_table1.json …
# BENCH_table4.json in the repo root, one JSON object per row).
#
# Defaults keep the sweep quick (small k only); pass --full to add the
# NIST-scale rows, exactly as with the binaries themselves. Extra
# arguments are forwarded verbatim to every table binary.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline -p gfab-bench

BIN=target/release
for t in table1 table2 table3 table4; do
    out="BENCH_${t}.json"
    echo "== $t → $out =="
    "$BIN/$t" --json "$@" | tee "$out"
done

echo "bench sweep done: BENCH_table{1,2,3,4}.json"
