#!/usr/bin/env bash
# Machine-readable benchmark sweep: runs the four paper-table binaries in
# --json mode and collects one JSONL file per table (BENCH_table1.json …
# BENCH_table4.json, one JSON object per row) into $BENCH_DIR (default:
# the repo root — the committed files there are the perf-gate baselines).
#
# Modes:
#   (default)   each binary's quick sweep (small k only)
#   --full      adds the NIST-scale rows, exactly as with the binaries
#   --pinned    the CI perf-gate workload: a fixed small k subset per
#               table, single-threaded, chosen so every row's verdict and
#               work counters are deterministic (no engine runs anywhere
#               near its wall budget) and the whole sweep stays fast
#   --batch     additionally runs the batch-engine cache sweep: a fixed
#               manifest through `gfab batch --repeat 2`, collecting the
#               cold and warm per-pass summaries (work units, cache
#               hit/miss/eviction counters) into BENCH_batch.json
#
# Any other arguments are forwarded verbatim to every table binary.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${BENCH_DIR:-.}"

PINNED=0
BATCH=0
ARGS=()
for a in "$@"; do
    case "$a" in
        --pinned) PINNED=1 ;;
        --batch) BATCH=1 ;;
        *) ARGS+=("$a") ;;
    esac
done

echo "== build (release) =="
cargo build --release --offline -p gfab-bench
if [ "$BATCH" = 1 ]; then
    cargo build --release --offline -p gfab
fi

# Per-table pinned k subsets. table3 runs four engines per k and the
# SAT/full-GB baselines approach their wall budgets already at k=8, which
# would make verdicts machine-dependent — k=4 keeps every engine orders
# of magnitude inside its budget. table4's first two ablations pin their
# own sweeps internally; the explicit k applies to the constant-blocks
# ablation.
pinned_ks() {
    case "$1" in
        table1) echo "16 32 64" ;;
        table2) echo "16 32" ;;
        table3) echo "4" ;;
        table4) echo "16" ;;
    esac
}

BIN=target/release
for t in table1 table2 table3 table4; do
    out="$OUT_DIR/BENCH_${t}.json"
    extra=()
    if [ "$PINNED" = 1 ]; then
        read -ra extra <<<"--threads 1 $(pinned_ks $t)"
    fi
    echo "== $t → $out =="
    "$BIN/$t" --json ${extra[@]+"${extra[@]}"} ${ARGS[@]+"${ARGS[@]}"} | tee "$out"
done

if [ "$BATCH" = 1 ]; then
    out="$OUT_DIR/BENCH_batch.json"
    echo "== batch cache sweep → $out =="
    TMP_MANIFEST=$(mktemp)
    trap 'rm -f "$TMP_MANIFEST"' EXIT
    cat > "$TMP_MANIFEST" <<'MANIFEST'
{
  "field": {"k": 32},
  "queries": [
    {"name": "mont-eq",  "op": "equiv",
     "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
    {"name": "mont-dup", "op": "equiv",
     "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
    {"name": "squarer",  "op": "extract", "circuit": {"gen": "squarer"}},
    {"name": "mont16",   "op": "extract", "circuit": {"gen": "montgomery"},
     "field": {"k": 16}}
  ]
}
MANIFEST
    "$BIN/gfab" batch "$TMP_MANIFEST" --threads 1 --repeat 2 \
        | grep '"batch-summary"' | tee "$out"
fi

echo "bench sweep done: BENCH_table{1,2,3,4}.json in $OUT_DIR"
