#!/usr/bin/env bash
# CI gate for the gfab workspace: formatting, lints, then the tier-1
# build-and-test pass. Run from anywhere; works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build (release) =="
cargo build --release --offline

echo "== tier-1: test =="
cargo test -q --offline

echo "== kernel smoke: coefficient kernels vs reference oracle =="
# Differential self-check of the zero-allocation GF(2^k) coefficient
# kernels (windowed comb multiply, spread-table squaring, precomputed
# modular reduction, batch inversion) against the bit-serial reference
# module, over every NIST field plus small dense moduli. Exits 1 on any
# mismatch. (The bench bins are not part of the root package's build.)
cargo build --release --offline -p gfab-bench
target/release/kernels --smoke

echo "== telemetry smoke: --trace-json emits a schema-valid trace =="
# Generate a small Mastrovito/Montgomery pair, run an equivalence check
# with JSONL tracing, and validate the trace with the binary's own strict
# parser (every line must parse and carry exactly the documented fields).
GFAB=target/release/gfab
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
"$GFAB" gen mastrovito --k 16 -o "$TRACE_DIR/spec.nl"
"$GFAB" gen montgomery --k 16 -o "$TRACE_DIR/impl.nl"
"$GFAB" equiv "$TRACE_DIR/spec.nl" "$TRACE_DIR/impl.nl" --k 16 \
    --trace-json "$TRACE_DIR/trace.jsonl" > /dev/null
"$GFAB" trace-check "$TRACE_DIR/trace.jsonl"

echo "== trace-diff smoke: self-comparison has zero deltas =="
# A trace diffed against itself must gate clean at threshold 0 and show
# no field deltas at all; and the same workload at a different thread
# count must show zero *work-unit* delta per phase (work units are
# deterministic — the property the CI perf gate is built on).
"$GFAB" trace-diff "$TRACE_DIR/trace.jsonl" "$TRACE_DIR/trace.jsonl" \
    --threshold 0 > "$TRACE_DIR/selfdiff.txt"
if grep -q ' -> ' "$TRACE_DIR/selfdiff.txt"; then
    echo "trace-diff self-comparison shows deltas:" >&2
    cat "$TRACE_DIR/selfdiff.txt" >&2
    exit 1
fi
"$GFAB" equiv "$TRACE_DIR/spec.nl" "$TRACE_DIR/impl.nl" --k 16 --threads 2 \
    --trace-json "$TRACE_DIR/trace2.jsonl" > /dev/null
"$GFAB" trace-diff "$TRACE_DIR/trace.jsonl" "$TRACE_DIR/trace2.jsonl" --threshold 0

echo "== batch smoke: manifest run, per-query verdicts, warm cache =="
# A small manifest with a duplicate query and shared Montgomery
# sub-blocks: the batch must exit 0, answer duplicates from the artifact
# cache (nonzero hits), and a second in-process pass (--repeat 2) must
# compute zero new work units.
cat > "$TRACE_DIR/batch.json" <<'MANIFEST'
{
  "field": {"k": 8},
  "queries": [
    {"name": "mont-eq",   "op": "equiv",
     "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
    {"name": "mont-dup",  "op": "equiv",
     "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
    {"name": "squarer",   "op": "extract", "circuit": {"gen": "squarer"}},
    {"name": "from-file", "op": "extract", "circuit": "spec.nl", "field": {"k": 16}}
  ]
}
MANIFEST
"$GFAB" batch "$TRACE_DIR/batch.json" --threads 2 --repeat 2 > "$TRACE_DIR/batch.out"
grep -q '"query":"mont-dup".*"verdict":"equivalent"' "$TRACE_DIR/batch.out"
hits=$(grep -o '"hits":[0-9]*' "$TRACE_DIR/batch.out" | head -1 | tr -dc 0-9)
if [ "${hits:-0}" -eq 0 ]; then
    echo "batch smoke: expected nonzero artifact-cache hits" >&2
    cat "$TRACE_DIR/batch.out" >&2
    exit 1
fi
warm=$(grep '"pass":1' "$TRACE_DIR/batch.out" | grep -o '"work_units":[0-9]*' | tr -dc 0-9)
if [ "${warm:-1}" -ne 0 ]; then
    echo "batch smoke: warm pass computed $warm work units, expected 0" >&2
    exit 1
fi

echo "== differential + mutation-kill battery (release, wall-budgeted) =="
# Three independent engines (word-level Verifier, SAT miter, exhaustive
# simulation) must agree on every seeded circuit, and every injected bug
# must be killed. Release mode keeps the battery fast; `timeout` bounds
# the whole step so a pathological regression fails CI instead of
# wedging it.
timeout 600 cargo test -q --offline --release \
    --test differential_engines --test mutation_kill --test budgeted_verification

echo "== fuzz smoke: seeded differential campaign, ~30s =="
# Two seeded campaigns through the real binary. The clean sweep
# (--fault-rate 0) runs every architecture, including the structurally
# random pool, and must produce zero catches and zero cross-engine
# findings; the faulted sweep must catch at least one injected fault
# (still with zero findings — a finding means two engines disagree,
# which is a bug in an engine, not in the specimen). One shrunk corpus
# case is then replayed from its JSON file and must still reproduce.
"$GFAB" fuzz --seed 1001 --cases 30 --k-min 4 --k-max 8 --fault-rate 0 \
    --threads 2 > "$TRACE_DIR/fuzz_clean.json"
grep -q '"caught":0,"benign":0,"clean":30,"findings":0' "$TRACE_DIR/fuzz_clean.json" || {
    echo "fuzz smoke: clean campaign not clean:" >&2
    cat "$TRACE_DIR/fuzz_clean.json" >&2
    exit 1
}
"$GFAB" fuzz --seed 1002 --cases 24 --k-min 6 --k-max 8 --fault-rate 100 \
    --threads 2 --corpus "$TRACE_DIR/fuzz_corpus" > "$TRACE_DIR/fuzz_bad.json"
caught=$(grep -o '"caught":[0-9]*' "$TRACE_DIR/fuzz_bad.json" | head -1 | tr -dc 0-9)
findings=$(grep -o '"findings":[0-9]*' "$TRACE_DIR/fuzz_bad.json" | head -1 | tr -dc 0-9)
if [ "${caught:-0}" -eq 0 ] || [ "${findings:-1}" -ne 0 ]; then
    echo "fuzz smoke: faulted campaign caught=$caught findings=$findings (want >0 / 0)" >&2
    exit 1
fi
first_case=$(ls "$TRACE_DIR"/fuzz_corpus/case-*.json | head -1)
"$GFAB" fuzz --replay "$first_case" > /dev/null

echo "== cross-run observability smoke: trace-agg, flame, ledger =="
# A batch run and a small clean fuzz sweep, both writing merged traces
# and appending to one shared ledger; then the three cross-run views
# must all work: trace-agg emits a v3 agg document that trace-check
# accepts, flame reports a critical path (and exports folded stacks),
# and report renders the accumulated ledger dashboard.
"$GFAB" batch "$TRACE_DIR/batch.json" --threads 2 \
    --trace-json "$TRACE_DIR/batch_trace.jsonl" \
    --ledger "$TRACE_DIR/ledger.jsonl" > /dev/null
"$GFAB" fuzz --seed 1003 --cases 6 --k-min 4 --k-max 6 --fault-rate 0 \
    --threads 2 --trace-json "$TRACE_DIR/fuzz_trace.jsonl" \
    --ledger "$TRACE_DIR/ledger.jsonl" > /dev/null
"$GFAB" trace-agg "$TRACE_DIR/batch_trace.jsonl" "$TRACE_DIR/fuzz_trace.jsonl" \
    --group-by k --json "$TRACE_DIR/agg.jsonl" > /dev/null
"$GFAB" trace-check "$TRACE_DIR/agg.jsonl"
"$GFAB" flame "$TRACE_DIR/batch_trace.jsonl" --critical-path \
    | grep -q 'critical path:'
"$GFAB" flame "$TRACE_DIR/batch_trace.jsonl" --out folded \
    | grep -q '[a-z] [0-9]'
"$GFAB" report "$TRACE_DIR/ledger.jsonl" > "$TRACE_DIR/report.txt"
# The verdict mix must show both producers: batch's equivalence verdicts
# and the fuzz campaign's clean-sweep row.
grep -q 'row(s) across' "$TRACE_DIR/report.txt"
grep -q 'equivalent' "$TRACE_DIR/report.txt"
grep -q 'clean' "$TRACE_DIR/report.txt"

echo "== live events smoke: --events stream, piped --progress, watch =="
# A batch run with both live sinks on, stdout/stderr piped (so the
# binary sees no terminal): the event stream must validate as a strict
# v4 NDJSON document, and nothing written anywhere may contain an ANSI
# escape byte. Then the ledger follower renders one board and exits.
"$GFAB" batch "$TRACE_DIR/batch.json" --threads 2 --progress \
    --events "$TRACE_DIR/events.jsonl" --ledger "$TRACE_DIR/watch_ledger.jsonl" \
    > "$TRACE_DIR/live_out.txt" 2> "$TRACE_DIR/live_err.txt"
"$GFAB" trace-check "$TRACE_DIR/events.jsonl" | grep -q 'valid events'
if grep -q $'\x1b' "$TRACE_DIR/live_out.txt" "$TRACE_DIR/live_err.txt"; then
    echo "live smoke: piped --progress leaked an ANSI escape" >&2
    exit 1
fi
grep -q '^progress:' "$TRACE_DIR/live_err.txt"
"$GFAB" watch "$TRACE_DIR/watch_ledger.jsonl" --iterations 1 \
    | grep -q 'row(s) across'

echo "== perf gate: pinned workload vs committed baselines =="
# Work-unit thresholds only — bench-diff never gates on wall time or
# memory, so this step is stable on any CI machine.
scripts/perf_gate.sh

echo "CI OK"
