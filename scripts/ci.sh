#!/usr/bin/env bash
# CI gate for the gfab workspace: formatting, lints, then the tier-1
# build-and-test pass. Run from anywhere; works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build (release) =="
cargo build --release --offline

echo "== tier-1: test =="
cargo test -q --offline

echo "CI OK"
