#!/usr/bin/env bash
# CI gate for the gfab workspace: formatting, lints, then the tier-1
# build-and-test pass. Run from anywhere; works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build (release) =="
cargo build --release --offline

echo "== tier-1: test =="
cargo test -q --offline

echo "== differential + mutation-kill battery (release, wall-budgeted) =="
# Three independent engines (word-level Verifier, SAT miter, exhaustive
# simulation) must agree on every seeded circuit, and every injected bug
# must be killed. Release mode keeps the battery fast; `timeout` bounds
# the whole step so a pathological regression fails CI instead of
# wedging it.
timeout 600 cargo test -q --offline --release \
    --test differential_engines --test mutation_kill --test budgeted_verification

echo "CI OK"
