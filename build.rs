//! Embeds a git-describe-style revision into the binary so `gfab
//! --version`, trace JSONL headers and fuzz-corpus files can all record
//! the exact build that produced an artifact. Falls back to "unknown"
//! outside a git checkout (e.g. a source tarball) — the package version
//! from Cargo is always available separately.

use std::process::Command;

fn main() {
    // Re-run when the checked-out commit moves.
    println!("cargo:rerun-if-changed=.git/HEAD");
    println!("cargo:rerun-if-changed=.git/refs");
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=GFAB_GIT_DESCRIBE={describe}");
}
