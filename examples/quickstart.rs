//! Quickstart: the paper's running example, end to end.
//!
//! Rebuilds the 2-bit multiplier over `F_4` of Fig. 2, prints its
//! polynomial model (Example 4.2), extracts `Z = A·B` with the RATO-guided
//! flow (Example 5.1), re-derives it with the unguided full Gröbner basis
//! (Example 4.2's `g7 : Z + AB`), then injects the paper's exact bug
//! (`r0 = s0 ⊕ s2`) and reproduces the buggy canonical polynomial
//! `Z + α·A²B² + A²B + (α+1)·AB² + (α+1)·AB`.
//!
//! Run with: `cargo run --release --example quickstart`

use gfab::core::fullgb::{full_gb_abstraction, CircuitVarOrder, FullGbOutcome};
use gfab::core::CoreError;
use gfab::field::{Gf2Poly, GfContext, Rng};
use gfab::netlist::{mutate, GateId, Netlist};
use gfab::poly::buchberger::GbLimits;
use gfab::Verifier;

fn fig2_multiplier() -> Netlist {
    let mut nl = Netlist::new("fig2");
    let a = nl.add_input_word("A", 2);
    let b = nl.add_input_word("B", 2);
    let s0 = nl.and(a[0], b[0]);
    let s1 = nl.and(a[0], b[1]);
    let s2 = nl.and(a[1], b[0]);
    let s3 = nl.and(a[1], b[1]);
    for (net, name) in [(s0, "s0"), (s1, "s1"), (s2, "s2"), (s3, "s3")] {
        nl.set_net_name(net, name);
    }
    let r0 = nl.xor(s1, s2);
    nl.set_net_name(r0, "r0");
    let z0 = nl.xor(s0, s3);
    let z1 = nl.xor(r0, s3);
    nl.set_output_word("Z", vec![z0, z1]);
    nl
}

fn main() -> Result<(), CoreError> {
    // F_4 with P(x) = x² + x + 1 (the paper's field for Fig. 2).
    let ctx =
        GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).expect("x^2+x+1 is irreducible");
    let nl = fig2_multiplier();

    println!("== Fig. 2: 2-bit multiplier over F_4, P(x) = x^2 + x + 1 ==\n");
    println!("netlist ({} gates):", nl.num_gates());
    print!("{}", gfab::netlist::format::emit(&nl));

    // A verification session: one builder, reused for every extraction.
    let verifier = Verifier::new(&ctx);

    // The polynomial model (Example 4.2's f_1 … f_10).
    let report = verifier.extract(&nl)?;
    let result = report.as_flat().expect("flat netlist gives flat report");
    println!("\npolynomial model under RATO (f_1 ... f_{}):", {
        result.model.gate_polys.len() + 1 + result.model.input_word_polys.len()
    });
    for p in result.model.all_polys() {
        println!("  {}", p.display(&result.model.ring));
    }

    // Guided extraction (Example 5.1, correct circuit).
    let f = result.canonical().expect("correct circuit is Case 1");
    println!("\nguided RATO extraction:   Z = {}", f.display());
    println!(
        "  ({} reduction steps, peak {} terms)",
        result.stats.reduction_steps, result.stats.peak_terms
    );

    // Full Gröbner basis (Example 4.2's g7).
    match full_gb_abstraction(
        &nl,
        &ctx,
        CircuitVarOrder::ReverseTopological,
        &GbLimits::default(),
    )? {
        FullGbOutcome::Canonical {
            function,
            basis_size,
            stats,
        } => {
            println!("\nfull GB (Example 4.2):    Z = {}", function.display());
            println!(
                "  (reduced basis of {} polynomials, {} S-polynomial reductions, {} pairs pruned by the product criterion)",
                basis_size,
                stats.pairs_reduced,
                stats.pairs_skipped_product + stats.pairs_skipped_chain,
            );
            assert!(function.matches(f), "both routes agree (Theorem 4.2)");
        }
        FullGbOutcome::GaveUp { reason, .. } => {
            println!("full GB gave up: {reason}");
        }
    }

    // Example 5.1's bug: replace f8 : r0 = s1 ⊕ s2 by r0 = s0 ⊕ s2.
    let mut buggy = fig2_multiplier();
    let r0_gate = GateId(4);
    let s0_net = buggy.gate(GateId(0)).output;
    let mutation = mutate::swap_wire(&mut buggy, r0_gate, 0, s0_net);
    println!("\n== Injecting the paper's bug: {mutation} ==");

    let buggy_report = verifier.extract(&buggy)?;
    let buggy_result = buggy_report.as_flat().expect("flat report");
    assert!(buggy_result.stats.case2_completion, "bug lands in Case 2");
    let fb = buggy_result
        .canonical()
        .expect("Case-2 completion succeeds on F_4");
    println!("buggy canonical polynomial: Z = {}", fb.display());
    println!("(paper Example 5.1: Z + α*A^2*B^2 + A^2*B + (α+1)*A*B^2 + (α+1)*A*B)");

    // Coefficient matching flags the difference immediately.
    assert!(!f.matches(fb));
    let mut rng = Rng::from_entropy();
    if let Some(cex) = f.find_counterexample(fb, 64, &mut rng) {
        println!(
            "counterexample: A = {}, B = {} (spec: {}, buggy: {})",
            cex[0],
            cex[1],
            f.eval(&cex),
            fb.eval(&cex)
        );
    }
    println!("\nequivalence verdict: INEQUIVALENT (as expected)");
    Ok(())
}
