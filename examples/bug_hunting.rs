//! Bug hunting with word-level abstraction: inject random gate-level bugs
//! into a multiplier and show what the verifier reports — the buggy
//! circuit's *own* canonical polynomial (via the Case-2 Gröbner-basis
//! completion) plus a concrete counterexample.
//!
//! This demonstrates the diagnostic advantage the paper's method has over
//! plain SAT: the verdict is not just "inequivalent" but the exact
//! polynomial function the broken hardware computes.
//!
//! Run with: `cargo run --release --example bug_hunting`

use gfab::circuits::mastrovito_multiplier;
use gfab::core::equiv::Verdict;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::netlist::mutate::inject_random_bug;
use gfab::sat::equiv::{check_equivalence_sat, SatVerdict};
use gfab::Verifier;

fn main() {
    let k = 4usize;
    let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
    let spec = mastrovito_multiplier(&ctx);
    println!(
        "golden model: {}-bit Mastrovito multiplier ({} gates) over P(x) = {}\n",
        k,
        spec.num_gates(),
        ctx.modulus()
    );

    let verifier = Verifier::new(&ctx);
    let mut real_bugs = 0;
    let mut benign = 0;
    for seed in 0..12u64 {
        let (buggy, mutation) = inject_random_bug(&spec, seed);
        let report = verifier.check(&spec, &buggy).expect("extraction succeeds");
        println!("seed {seed:2}: mutation [{mutation}]");
        match &report.verdict {
            Verdict::Equivalent { .. } => {
                benign += 1;
                println!("        benign — function unchanged");
            }
            Verdict::Inequivalent {
                impl_: buggy_fn,
                counterexample,
                ..
            } => {
                real_bugs += 1;
                println!(
                    "        BUG — buggy circuit computes Z = {}",
                    buggy_fn.display()
                );
                if let Some(cex) = counterexample {
                    println!("        counterexample: A = {}, B = {}", cex[0], cex[1]);
                }
                // Cross-check with the SAT miter baseline.
                let sat = check_equivalence_sat(&spec, &buggy, 1_000_000);
                match sat.verdict {
                    SatVerdict::Counterexample(_) => {
                        println!("        (SAT miter agrees: counterexample found)")
                    }
                    other => println!("        (SAT miter: {other:?})"),
                }
            }
            Verdict::InequivalentBySimulation { counterexample } => {
                real_bugs += 1;
                println!(
                    "        BUG — refuted by simulation at A = {}, B = {}",
                    counterexample[0], counterexample[1]
                );
            }
            Verdict::EquivalentBySat { conflicts } => {
                benign += 1;
                println!("        benign — SAT fallback proved UNSAT ({conflicts} conflicts)");
            }
            Verdict::InequivalentBySat { counterexample, .. } => {
                real_bugs += 1;
                println!(
                    "        BUG — SAT fallback witness at A = {}, B = {}",
                    counterexample[0], counterexample[1]
                );
            }
            Verdict::Unknown { reason } => println!("        UNKNOWN: {reason}"),
        }
        println!();
    }
    println!("summary: {real_bugs} real bugs, {benign} benign mutations out of 12");
}
