//! Reverse engineering unknown datapaths: the abstraction engine doesn't
//! need to be told what a circuit *should* compute — it derives the
//! word-level function from the gates alone. This is the "identify the
//! function implemented by the given Galois field arithmetic circuits"
//! capability of the paper's contribution list.
//!
//! We build a bag of mystery netlists (optimized/structurally hashed so
//! their origins aren't obvious), extract each canonical polynomial, and
//! name the function it turned out to be.
//!
//! Run with: `cargo run --release --example reverse_engineer`

use gfab::circuits::{
    constant_multiplier, gf_adder, mastrovito_multiplier, monpro, montgomery_multiplier_hier,
    sqrt_circuit, squarer, trace_circuit, MonproOperand,
};
use gfab::core::extract_word_polynomial;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::netlist::opt::optimize;
use gfab::netlist::strash::structural_hash;
use gfab::netlist::Netlist;
use std::time::Instant;

fn disguise(nl: &Netlist, codename: &str) -> Netlist {
    // Optimize + strash + strip the telltale design name.
    let (opt, _) = optimize(nl);
    let (mut hashed, _) = structural_hash(&opt);
    hashed.set_name(codename.to_string());
    hashed
}

fn main() {
    let k = 8usize;
    let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
    println!(
        "field F_2^{k}, P(x) = {}; reverse engineering 8 mystery netlists:\n",
        ctx.modulus()
    );

    let c = ctx.from_u64(0x5B);
    let mysteries: Vec<Netlist> = vec![
        disguise(&mastrovito_multiplier(&ctx), "unit_00"),
        disguise(&montgomery_multiplier_hier(&ctx).flatten(), "unit_01"),
        disguise(&monpro(&ctx, "x", MonproOperand::Word), "unit_02"),
        disguise(&squarer(&ctx), "unit_03"),
        disguise(&sqrt_circuit(&ctx), "unit_04"),
        disguise(&trace_circuit(&ctx), "unit_05"),
        disguise(&gf_adder(&ctx), "unit_06"),
        disguise(&constant_multiplier(&ctx, &c), "unit_07"),
    ];

    for nl in &mysteries {
        let t = Instant::now();
        let result = extract_word_polynomial(nl, &ctx).expect("extraction succeeds");
        let elapsed = t.elapsed();
        let f = result.canonical().expect("well-formed circuits are Case 1");
        let shown = format!("{}", f.display());
        // A human-readable guess at what the polynomial *is*.
        let verdict = match shown.as_str() {
            "A*B" => "field multiplier".to_string(),
            "A + B" => "field adder".to_string(),
            "A^2" => "squarer (Frobenius)".to_string(),
            s if s == format!("A^{}", 1u64 << (k - 1)) => "square root".to_string(),
            _ if f.num_terms() == k
                && f.poly()
                    .terms()
                    .iter()
                    .all(|(m, c)| c.is_one() && m.total_degree().is_power_of_two()) =>
            {
                "absolute trace Tr(A)".to_string()
            }
            _ if f.num_terms() == 1 && f.poly().total_degree() == Some(2) => {
                "Montgomery product A*B*R^-1".to_string()
            }
            _ if f.num_terms() == 1 && f.poly().total_degree() == Some(1) => {
                "constant multiplier".to_string()
            }
            _ => "unrecognized function".to_string(),
        };
        println!(
            "{} ({:>5} gates): Z = {:40}  -> {verdict}  [{elapsed:?}]",
            nl.name(),
            nl.num_gates(),
            if shown.len() > 40 {
                format!("({} terms)", f.num_terms())
            } else {
                shown
            },
        );
    }
}
