//! The Fig. 1 hierarchical flow: extract each Montgomery block's
//! word-level polynomial, compose them at the word level, and verify the
//! composition against a flattened Mastrovito golden model — the paper's
//! Table 2 configuration in miniature.
//!
//! Run with: `cargo run --release --example hierarchical_montgomery [k] [threads]`
//! (default k = 32, threads = available parallelism; blocks are extracted
//! concurrently).

use gfab::circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
use gfab::core::equiv::Verdict;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::Verifier;
use std::time::Instant;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let poly = irreducible_polynomial(k).expect("no irreducible polynomial found");
    println!("field: F_2^{k}, P(x) = {poly}");
    let ctx = GfContext::shared(poly).expect("irreducible by construction");

    let design = montgomery_multiplier_hier(&ctx);
    println!(
        "hierarchical Montgomery multiplier (Fig. 1): {} blocks, {} gates total",
        design.blocks.len(),
        design.num_gates()
    );
    for inst in &design.blocks {
        println!(
            "  {:8} {:12} {:>8} gates",
            inst.name,
            inst.netlist.name(),
            inst.netlist.num_gates()
        );
    }

    // Per-block abstraction + word-level composition, via a session that
    // shares its thread budget across both calls below.
    let verifier = Verifier::new(&ctx).threads(threads);
    let t = Instant::now();
    let report = verifier.extract(&design).expect("all blocks are Case 1");
    let hier = report.as_hier().expect("hierarchical design");
    println!("\nper-block word-level polynomials:");
    for (name, f, stats) in &hier.blocks {
        // Large-k block polynomials have k+1-ish terms; summarize instead
        // of printing walls of α-powers.
        let shown = if f.num_terms() <= 4 {
            format!("{}", f.display())
        } else {
            format!("({} terms)", f.num_terms())
        };
        println!(
            "  {:8} Z = {:24} [{} steps, {:?}]",
            name, shown, stats.reduction_steps, stats.duration
        );
    }
    println!(
        "composed function: G = {}   [composition took {:?}]",
        hier.function.display(),
        hier.compose_time
    );
    println!("total hierarchical extraction: {:?}", t.elapsed());

    // Equivalence against the flattened golden model.
    let t = Instant::now();
    let spec = mastrovito_multiplier(&ctx);
    let report = verifier.check(&spec, &design).expect("extraction succeeds");
    match &report.verdict {
        Verdict::Equivalent { function } => {
            println!(
                "\nSpec (Mastrovito, {} gates) ≡ Impl (Montgomery, hierarchical): Z = {}",
                spec.num_gates(),
                function.display()
            );
        }
        other => println!("\nunexpected verdict: {other:?}"),
    }
    println!(
        "equivalence check (incl. spec abstraction): {:?}",
        t.elapsed()
    );
}
