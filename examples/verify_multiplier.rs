//! End-to-end equivalence verification of structurally dissimilar
//! multipliers: flattened Mastrovito (Spec) vs. flattened Montgomery
//! (Impl), the paper's Section 6 configuration.
//!
//! Run with: `cargo run --release --example verify_multiplier [k]`
//! (default k = 16; any k with a known irreducible polynomial works —
//! NIST sizes 163/233/… take correspondingly longer).

use gfab::circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
use gfab::core::equiv::Verdict;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::GfContext;
use gfab::Verifier;
use std::time::Instant;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let poly = irreducible_polynomial(k).expect("no irreducible polynomial found");
    println!("field: F_2^{k}, P(x) = {poly}");
    let ctx = GfContext::shared(poly).expect("irreducible by construction");

    let t = Instant::now();
    let spec = mastrovito_multiplier(&ctx);
    let impl_ = montgomery_multiplier_hier(&ctx).flatten();
    println!(
        "spec: {} ({} gates)   impl: {} ({} gates)   [generated in {:?}]",
        spec.name(),
        spec.num_gates(),
        impl_.name(),
        impl_.num_gates(),
        t.elapsed()
    );

    let t = Instant::now();
    let report = Verifier::new(&ctx)
        .threads(threads)
        .check(&spec, &impl_)
        .expect("extraction succeeds");
    let elapsed = t.elapsed();

    match &report.verdict {
        Verdict::Equivalent { function } => {
            println!(
                "verdict: EQUIVALENT — both implement Z = {}",
                function.display()
            );
        }
        Verdict::Inequivalent {
            spec,
            impl_,
            counterexample,
        } => {
            println!("verdict: INEQUIVALENT");
            println!("  spec : Z = {}", spec.display());
            println!("  impl : Z = {}", impl_.display());
            if let Some(cex) = counterexample {
                println!("  counterexample: {cex:?}");
            }
        }
        Verdict::InequivalentBySimulation { counterexample } => {
            println!("verdict: INEQUIVALENT (simulation witness)");
            println!("  counterexample: {counterexample:?}");
        }
        Verdict::EquivalentBySat { conflicts } => {
            println!("verdict: EQUIVALENT (SAT fallback, {conflicts} conflicts)");
        }
        Verdict::InequivalentBySat {
            counterexample,
            conflicts,
        } => {
            println!("verdict: INEQUIVALENT (SAT fallback, {conflicts} conflicts)");
            println!("  counterexample: {counterexample:?}");
        }
        Verdict::Unknown { reason } => println!("verdict: UNKNOWN ({reason})"),
    }
    println!(
        "spec abstraction: {} steps, peak {} terms, {:?}",
        report.spec_stats.reduction_steps, report.spec_stats.peak_terms, report.spec_stats.duration
    );
    println!(
        "impl abstraction: {} steps, peak {} terms, {:?}",
        report.impl_stats.reduction_steps, report.impl_stats.peak_terms, report.impl_stats.duration
    );
    println!("total equivalence check: {elapsed:?}");
}
